"""The slim machine state shared by every pipeline stage.

:class:`CoreState` owns the architectural and microarchitectural state
of one simulated core — the queues, the physical register file and
rename tables, the branch predictor, the SpecMPK unit, the memory
hierarchy, fetch state, and the statistics window — and nothing else.
The stage modules under :mod:`repro.core.stages` are free functions
over a ``CoreState``; the orchestration (run loop, fast path,
cosimulation, invariant checking) lives in
:class:`repro.core.pipeline.Simulator`, which subclasses this.

Keeping the state in one flat namespace (rather than per-stage
sub-objects) is deliberate: the stage functions are the hottest code in
the repository and every extra attribute hop costs a dict lookup per
dynamic instruction.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..isa.emulator import ArchState
from ..isa.program import Program
from ..isa.registers import NUM_REGS
from ..memory.address_space import AddressSpace
from ..memory.backend import make_tlb
from ..memory.hierarchy import MemoryHierarchy
from ..trace.collector import TraceCollector
from .branch_predictor import BranchPredictor
from .config import CoreConfig, WrpkruPolicy
from .dynamic import DynInst
from .register_file import PhysRegFile, RenameTables
from .rob_pkru import SpecMpkUnit
from .schedule import TimingSchedule, shared_schedule, timing_blocks_enabled
from .stats import SimStats


class CoreState:
    """Machine state of one out-of-order core (see module docstring).

    The machine starts from an arbitrary architectural state: by
    default a fresh :class:`~repro.isa.emulator.ArchState` at the
    program entry, or — via *start_state* — one rebuilt from a
    checkpoint (registers seeded into the PRF through the identity
    rename mapping, fetch redirected to its PC, PKRU installed in the
    SpecMPK unit, its address space adopted).  *start_state* is
    mutually exclusive with *address_space*/*initial_pkru*.
    """

    #: Golden-model emulator for lockstep commit checking, installed by
    #: :class:`repro.core.pipeline.Simulator` when cosimulation is on.
    #: Declared here so the commit stage can test it with one attribute
    #: load on any CoreState.
    _cosim = None

    def __init__(
        self,
        program: Program,
        config: Optional[CoreConfig] = None,
        address_space: Optional[AddressSpace] = None,
        initial_pkru: int = 0,
        trace: Optional[TraceCollector] = None,
        start_state: Optional[ArchState] = None,
    ) -> None:
        self.program = program
        #: Observability sink (:mod:`repro.trace`).  ``None`` disables
        #: tracing; every hook below is then a single attribute test.
        self.trace = trace
        self.config = config or CoreConfig()
        cfg = self.config

        if start_state is None:
            if address_space is None:
                address_space = AddressSpace()
                address_space.map_regions(program.regions)
            start_state = ArchState(address_space, pkru=initial_pkru)
            start_state.pc = program.entry
        else:
            if address_space is not None:
                raise ValueError(
                    "pass either start_state or address_space, not both"
                )
            address_space = start_state.memory
        self.start_state = start_state
        self.memory = address_space
        self.hierarchy = MemoryHierarchy(
            l1d=cfg.l1d,
            l1i=cfg.l1i if cfg.model_icache else None,
            l2=cfg.l2,
            l3=cfg.l3,
            dram_latency=cfg.dram_latency,
            prefetch_next_line=cfg.prefetch_next_line,
        )
        self.tlb = make_tlb(
            address_space.page_table,
            entries=cfg.tlb_entries,
            walk_latency=cfg.tlb_walk_latency,
            backend=self.hierarchy.backend,
        )

        self.prf = PhysRegFile(cfg.phys_regs)
        self.rename_tables = RenameTables(self.prf)
        # Seed the start state's registers through the identity
        # AMT/RMT mapping (r0 stays hardwired zero).
        for lreg in range(1, NUM_REGS):
            self.prf.values[lreg] = start_state.regs[lreg]
        self.predictor = BranchPredictor(
            btb_entries=cfg.btb_entries,
            ras_entries=cfg.ras_entries,
            kind=cfg.predictor,
        )

        # The SpecMPK unit doubles as the PKRU home for every policy;
        # SERIALIZED simply never allocates ROB_pkru entries, and the
        # NonSecure microarchitecture renames through an effectively
        # unbounded buffer (the paper renames it via the main PRF).
        policy = cfg.wrpkru_policy
        window = cfg.rob_pkru_size if policy is WrpkruPolicy.SPECMPK else (
            cfg.active_list_size
        )
        self.specmpk = SpecMpkUnit(window, initial_pkru=start_state.pkru)
        # Policy predicates, resolved once: the rename/memory hot loops
        # test these every instruction and enum identity checks plus the
        # ``renames_pkru`` property are measurable there.
        self._policy_serialized = policy is WrpkruPolicy.SERIALIZED
        self._policy_specmpk = policy is WrpkruPolicy.SPECMPK
        self._renames_pkru = policy.renames_pkru
        self._memdep_spec = cfg.memory_dependence_speculation
        self._load_dom = cfg.load_security == "dom"
        self._stall_tlb_miss = (
            self._policy_specmpk and cfg.stall_on_tlb_miss
        )

        #: Precompiled per-block timing schedule (the static schedule
        #: layer, :mod:`repro.core.schedule`); ``None`` when
        #: ``REPRO_TIMING_BLOCKS=0`` selects the single-step engine.
        self.schedule: Optional[TimingSchedule] = (
            shared_schedule(program) if timing_blocks_enabled() else None
        )

        # Pipeline structures.  The LQ/SQ are deques: retirement pops
        # from the front, squash from the back — both O(1).
        self.active_list: Deque[DynInst] = deque()
        self.frontend: Deque[DynInst] = deque()
        self.load_queue: Deque[DynInst] = deque()
        self.store_queue: Deque[DynInst] = deque()
        self.iq_count = 0
        self.ready_heap: List = []  # (seq, DynInst)
        self.mem_parked: List[DynInst] = []
        #: Set when a store/lfence executes or retires, or a squash
        #: happens — the only events that can unpark memory accesses.
        self._mem_retry = False
        self.events: Dict[int, List[DynInst]] = {}
        self.inflight_lfences: List[int] = []
        #: Seqs of renamed, non-squashed stores whose address is still
        #: unknown, ascending (rename appends in order; execute_store
        #: and squash remove).  Makes the conservative load-ordering
        #: check O(1): an older unknown store exists iff the first
        #: entry is older than the load.
        self._unknown_stores: List[int] = []
        #: Executed, in-flight (not yet retired), non-squashed stores
        #: indexed by address — the store-to-load forwarding lookup.
        #: Maintained by execute_store (insert), store retirement
        #: (remove), and trim_younger (remove), replacing a full
        #: store-queue scan per executed load.
        self._fwd_stores: Dict[int, List[DynInst]] = {}

        # Fetch state.
        self.cycle = 0
        self.fetch_pc = start_state.pc
        self.fetch_resume_cycle = 0
        self.fetch_stopped = False
        self.next_seq = 0

        # Serialization state (SERIALIZED policy).
        self.serialize_block: Optional[DynInst] = None

        self.stats = SimStats()
        self._cycle_base = 0
        self.halted = start_state.halted
        self._fault: Optional[BaseException] = None
        self._retired_this_run = 0
        # Exact retire budget for the current measurement window, or
        # None for the classic semantics (the final cycle retires its
        # full commit group, overshooting the budget by up to
        # ``commit_width - 1``).  Time-sharded runs set this so shard
        # windows tile the committed stream with no double counting
        # (:mod:`repro.perf.timeshard`); ordinary runs never do, which
        # keeps their results byte-identical.
        self.retire_limit: Optional[int] = None

        # Fast-path savings (telemetry only — deliberately NOT in
        # SimStats, whose contents are asserted bit-identical with the
        # fast path on vs off).
        self.cycles_fast_skipped = 0
        self.fast_skip_events = 0
        # Macro-step savings (same telemetry-only contract): cycles
        # advanced inside the fused linear-stretch loop, and how many
        # times the loop engaged.
        self.cycles_macro_stepped = 0
        self.macro_step_events = 0
        # Macro engagement-probe memo: linearity verdict for the last
        # probed fetch PC (see :func:`repro.core.fastpath.macro_advance`).
        self._macro_probe_pc = -1
        self._macro_probe_linear = False

        # Lazy SpecMPK-unit occupancy histogram.  Occupancy only
        # changes at WRPKRU allocate/retire/squash, so instead of
        # sampling every cycle the tracker credits ``hist[value] +=
        # cycles`` at each change (:func:`note_pkru_occ`) — matching
        # the trace layer's end-of-cycle sampling bit-exactly at a cost
        # proportional to WRPKRU events, not cycles.
        self._pkru_occ_hist: Dict[int, int] = {}
        self._pkru_occ_last = 0


def note_pkru_occ(core: CoreState) -> None:
    """Credit the cycles since the last SpecMPK occupancy change.

    Called immediately *before* any allocate/retire/squash on the
    SpecMPK unit: cycles ``[last, now)`` ended with the current
    (pre-change) occupancy.  The cycle the change happens in is
    credited later with its end-of-cycle value, which is exactly
    how the trace collector samples.
    """
    cycle = core.cycle
    elapsed = cycle - core._pkru_occ_last
    if elapsed > 0:
        occupancy = core.specmpk.occupancy
        hist = core._pkru_occ_hist
        hist[occupancy] = hist.get(occupancy, 0) + elapsed
    core._pkru_occ_last = cycle

"""The out-of-order core and the SpecMPK microarchitecture."""

from .branch_predictor import (
    BimodalOnlyPredictor,
    BranchPredictor,
    GsharePredictor,
    TagePredictor,
)
from .config import CoreConfig, WrpkruPolicy, table_iii_config
from .dynamic import DynInst
from .pipeline import CosimMismatch, Simulator
from .register_file import PhysRegFile, RenameError, RenameTables
from .rob_pkru import PkruEntry, SpecMpkUnit
from .stats import SimResult, SimStats

__all__ = [
    "BimodalOnlyPredictor",
    "BranchPredictor",
    "GsharePredictor",
    "CoreConfig",
    "CosimMismatch",
    "DynInst",
    "PhysRegFile",
    "PkruEntry",
    "RenameError",
    "RenameTables",
    "SimResult",
    "SimStats",
    "Simulator",
    "SpecMpkUnit",
    "TagePredictor",
    "WrpkruPolicy",
    "table_iii_config",
]

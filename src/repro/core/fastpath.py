"""Fast-path layer: multi-cycle advancement of quiescent stretches.

The staged engine steps one cycle at a time only when a stage can make
progress.  Two fast paths amortize that stepping:

* :func:`idle_skip` — for cycles where every stage would provably be a
  no-op (nothing retires, completes, issues, renames, or fetches) the
  clock jumps straight to the next wakeup and the skipped cycles are
  credited to exactly the counters and top-down buckets per-cycle
  stepping would have bumped;
* :func:`macro_advance` — the generalization from *idle* cycles to
  *linear* stretches.  While the fetch stream sits inside blocks the
  schedule marked :attr:`~repro.core.schedule.TimingBlock.is_linear`
  (no WRPKRU, no conditional/indirect control flow, no at-head
  serializing ops, at least :data:`MACRO_MIN_LINEAR` instructions
  long) and the ROB_pkru is dynamically empty, whole
  dispatch groups advance through a fused stage loop whose rename
  inner loop (:func:`rename_linear`) has every PKRU-policy branch
  hoisted out.  Retire, writeback, issue, and fetch run their exact
  stage functions — outstanding misses, replays, and squashes from
  older in-flight branches are handled bit-exactly — and the loop
  falls back to the per-cycle path the moment any disqualifier
  appears (a WRPKRU renames, the stream reaches a non-linear block).

``SimStats``, the :mod:`repro.trace` accounting, and the SpecMPK
occupancy histogram are bit-identical with the fast paths on or off
(the tier-1 suite asserts this), traced or untraced.  Because the
SpecMPK occupancy is pinned at zero for the whole engagement, the lazy
occupancy tracker (:func:`~repro.core.corestate.note_pkru_occ`)
accounts an entire macro stretch in one closed-form credit.

Idle stretches appear behind long L2/DRAM misses and TLB walks; under
the SERIALIZED WRPKRU policy they also appear while the front end
drains around each permission update, which is why the fast path is
where that policy's slowdown shows up as *skipped* rather than
*stepped* cycles.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from ..isa.opcodes import Opcode
from ..isa.registers import to_u64
from ..perf.envflag import env_flag
from ..trace.collector import EventKind, StallKind
from .corestate import CoreState
from .stages.commit import retire_stage
from .stages.fetch import fetch_stage
from .stages.issue import issue_stage
from .stages.rename import rename_gate, rename_stage
from .stages.writeback import writeback_stage

_DECODE = EventKind.DECODE
_RENAME = EventKind.RENAME
_DISPATCH = EventKind.DISPATCH
_CALL = Opcode.CALL
_NO_ISSUE = (Opcode.NOP, Opcode.HALT, Opcode.JMP)


def macro_step_enabled() -> bool:
    """Steady-state macro-stepping is on unless ``REPRO_MACRO_STEP``
    disables it."""
    return env_flag("REPRO_MACRO_STEP", default=True)


#: Minimum linear-block length (instructions) for macro engagement.
#: Engaging costs a probe plus loop setup/teardown; on a block shorter
#: than a couple of dispatch groups the fused loop disengages before
#: it amortizes any of that, so tiny straight-line bodies between
#: branches (or WRPKRU pairs) step exactly.  This is also what makes
#: the engagement *selective*: WRPKRU-dense and mispredict-dense
#: programs — whose blocks are all short — never macro-step, which
#: ``tests/core/test_timing_engine.py`` pins.
MACRO_MIN_LINEAR = 8


def rename_blocked(core: CoreState) -> Optional[tuple]:
    """Why rename cannot proceed this cycle: (stat, flag) or None.

    Mirrors the gate order of :func:`~.stages.rename.rename_stage` +
    :func:`~.stages.rename.rename_gate` exactly; used only by the fast
    path, which charges the returned counter once per skipped cycle.
    """
    if not core.frontend:
        return ("rename_stall_empty", StallKind.FRONTEND_EMPTY)
    inst = core.frontend[0]
    if inst.fetch_cycle + core.config.frontend_depth > core.cycle:
        return (None, StallKind.FRONTEND_EMPTY)
    if core.serialize_block is not None:
        return ("rename_stall_wrpkru", StallKind.WRPKRU_SERIALIZATION)
    if len(core.active_list) >= core.config.active_list_size:
        return ("rename_stall_al_full", StallKind.BACKEND_AL_FULL)
    return rename_gate(core, inst.static)


def idle_skip(core: CoreState, max_cycles: int) -> int:
    """Fast-forward the clock over fully idle cycles.

    A cycle is idle when every stage would be a no-op: nothing can
    retire (the Active List head is waiting on a scheduled
    completion), nothing writes back this cycle, nothing is ready
    to issue, rename is blocked by a cause only a future completion
    can clear, and fetch is stalled.  Instead of stepping through
    such stretches one bookkeeping cycle at a time, jump the clock to
    the next wakeup and credit the skipped cycles (see module
    docstring).

    Returns the number of cycles skipped; 0 means "not idle, step
    normally".
    """
    # Cheapest discriminators first: most cycles are busy and must
    # bail out of this probe almost for free.
    events = core.events
    cycle = core.cycle
    if cycle in events:
        return 0  # a completion writes back this cycle
    heap = core.ready_heap
    while heap:
        top = heap[0][1]
        if top.squashed or top.issued:
            heappop(heap)  # exactly what issue_stage would discard
        else:
            return 0  # something can issue
    if core._mem_retry and core.mem_parked:
        return 0  # parked memory accesses must be rescanned
    tlb_flag = 0
    active_list = core.active_list
    if active_list:
        head = active_list[0]
        if head.completed:
            return 0  # retirement proceeds
        static = head.static
        if head.replay_at_head and not head.replay_started:
            return 0  # the head starts its non-speculative replay
        if not head.executed and (
            head.is_rdpkru or static.is_lfence or static.is_clflush
        ):
            return 0  # executes at the head this cycle
        if (
            (head.replay_at_head or head.replay_started)
            and head.replay_reason == "tlb"
        ):
            tlb_flag = StallKind.TLB  # retire stage raises this flag
    blocked = rename_blocked(core)
    if blocked is None:
        return 0  # rename makes progress
    cfg = core.config
    fetch_has_room = (
        not core.fetch_stopped
        and len(core.frontend) < 4 * cfg.fetch_width
    )
    if fetch_has_room and core.fetch_resume_cycle <= cycle:
        return 0  # fetch makes progress

    # Idle.  Wake at the next scheduled completion, or earlier if a
    # time-driven stall (redirect penalty, front-end pipe depth)
    # expires first.
    wake = min(events) if events else max_cycles
    if fetch_has_room and core.fetch_resume_cycle > cycle:
        wake = min(wake, core.fetch_resume_cycle)
    if core.frontend:
        depth_ready = core.frontend[0].fetch_cycle + cfg.frontend_depth
        if depth_ready > cycle:
            wake = min(wake, depth_ready)
    wake = min(wake, max_cycles)
    skipped = wake - cycle
    if skipped <= 0:
        return 0

    core.cycles_fast_skipped += skipped
    core.fast_skip_events += 1
    stat, flag = blocked
    stats = core.stats
    if stat is not None:
        # The same rename-stall counter a per-cycle step would have
        # bumped once per idle cycle.
        setattr(stats, stat, getattr(stats, stat) + skipped)
    core.cycle = wake
    stats.cycles = wake - core._cycle_base
    if core.trace is not None:
        core.trace.skip_cycles(
            cycle,
            skipped,
            int(flag | tlb_flag),
            (
                len(core.frontend), len(active_list), core.iq_count,
                len(core.load_queue), len(core.store_queue),
                core.specmpk.occupancy,
            ),
        )
    return skipped


def rename_linear(core: CoreState) -> None:
    """Rename a dispatch group known to contain no PKRU activity.

    The macro-step specialization of
    :func:`~repro.core.stages.rename.rename_stage`: legal only inside
    an engaged macro stretch, where ``serialize_block`` is provably
    ``None`` (only a renaming WRPKRU sets it) and the ROB_pkru is
    empty (``current_dep()`` is ``None`` and ``_next_uid`` is a loop
    constant).  Those facts delete the WRPKRU gate, the serialization
    check, and the per-memory-instruction PKRU dependence lookup from
    the inner loop; every remaining check, stall counter, and trace
    event is the exact stepping path's.  The moment the group's next
    instruction is a disqualifier (WRPKRU/LFENCE), the rest of the
    cycle is handed to the real stage with the running ``renamed``
    count, which keeps the handoff bit-exact.
    """
    frontend = core.frontend
    trace = core.trace
    stats = core.stats
    cycle = core.cycle
    cfg = core.config
    depth = cfg.frontend_depth
    if not frontend:
        stats.rename_stall_empty += 1
        if trace is not None:
            trace.stall(StallKind.FRONTEND_EMPTY)
        return
    if frontend[0].fetch_cycle + depth > cycle:
        if trace is not None:
            trace.stall(StallKind.FRONTEND_EMPTY)
        return
    width = cfg.rename_width
    al_size = cfg.active_list_size
    lq_size = cfg.load_queue_size
    sq_size = cfg.store_queue_size
    iq_size = cfg.issue_queue_size
    active_list = core.active_list
    load_queue = core.load_queue
    store_queue = core.store_queue
    rename_tables = core.rename_tables
    rmt = rename_tables.rmt
    free_list = rename_tables.free_list
    prf = core.prf
    ready = prf.ready
    waiters_map = prf.waiters
    al_append = active_list.append
    pop_frontend = frontend.popleft
    next_uid = core.specmpk._next_uid
    renamed = 0
    while renamed < width:
        if not frontend:
            stats.rename_stall_empty += renamed == 0
            if trace is not None and renamed == 0:
                trace.stall(StallKind.FRONTEND_EMPTY)
            return
        inst = frontend[0]
        if inst.fetch_cycle + depth > cycle:
            if trace is not None and renamed == 0:
                trace.stall(StallKind.FRONTEND_EMPTY)
            return  # still in the front-end pipe
        if len(active_list) >= al_size:
            stats.rename_stall_al_full += 1
            if trace is not None:
                trace.stall(StallKind.BACKEND_AL_FULL)
            return

        static = inst.static
        if static.is_wrpkru or static.is_lfence:
            # Disqualifier mid-group (wrong-path fetch can outrun the
            # engagement probe): the exact stage finishes the cycle.
            rename_stage(core, renamed)
            return
        ldst = static.eff_dst

        # Structural gates, same order as the exact loop (whose WRPKRU
        # branch is unreachable here).
        gate = None
        if static.is_load and len(load_queue) >= lq_size:
            gate = ("rename_stall_lsq_full", StallKind.BACKEND_LSQ_FULL)
        elif static.is_store and len(store_queue) >= sq_size:
            gate = ("rename_stall_lsq_full", StallKind.BACKEND_LSQ_FULL)
        elif static.needs_iq and core.iq_count >= iq_size:
            gate = ("rename_stall_iq_full", StallKind.BACKEND_IQ_FULL)
        elif ldst is not None and not free_list:
            gate = ("rename_stall_no_preg", StallKind.BACKEND_NO_PREG)
        if gate is not None:
            stat, flag = gate
            setattr(stats, stat, getattr(stats, stat) + 1)
            if trace is not None:
                trace.stall(flag)
            return

        # PKRU dependence: current_dep() is None while the ROB_pkru is
        # empty, and DynInst.pkru_dep defaults to None — nothing to tag.

        # Register rename (inlined RenameTables.allocate; free list
        # checked by the gate above).
        psrc1 = psrc2 = None
        lsrc1 = static.eff_src1
        if lsrc1 is not None:
            inst.psrc1 = psrc1 = rmt[lsrc1]
        lsrc2 = static.eff_src2
        if lsrc2 is not None:
            inst.psrc2 = psrc2 = rmt[lsrc2]
        if ldst is not None:
            inst.ldst = ldst
            inst.pdst = pdst = free_list.pop()
            rmt[ldst] = pdst
            ready[pdst] = False

        inst.pkru_mark = next_uid
        al_append(inst)
        if static.is_load:
            load_queue.append(inst)
        elif static.is_store:
            store_queue.append(inst)
            core._unknown_stores.append(inst.seq)

        inst.dispatched = True
        if not static.needs_iq:
            # NOP/HALT/JMP/CALL shortcuts that skip the IQ (RDPKRU
            # executes at the head of the Active List).
            op = static.opcode
            if op is _CALL:
                for waiter in prf.write(inst.pdst, to_u64(inst.pc + 1)):
                    if waiter.squashed or waiter.issued:
                        continue
                    waiter.waiting_on -= 1
                    if waiter.waiting_on == 0 and waiter.dispatched:
                        heappush(core.ready_heap, (waiter.seq, waiter))
                inst.executed = inst.completed = True
            elif op in _NO_ISSUE:
                inst.executed = inst.completed = True
        else:
            # Dispatch into the issue queue with wakeup registration.
            core.iq_count += 1
            inst.in_iq = True
            waits = 0
            if psrc1 is not None and not ready[psrc1]:
                pending = waiters_map.get(psrc1)
                if pending is None:
                    waiters_map[psrc1] = [inst]
                else:
                    pending.append(inst)
                waits += 1
            if psrc2 is not None and not ready[psrc2]:
                pending = waiters_map.get(psrc2)
                if pending is None:
                    waiters_map[psrc2] = [inst]
                else:
                    pending.append(inst)
                waits += 1
            inst.waiting_on = waits
            if waits == 0:
                heappush(core.ready_heap, (inst.seq, inst))

        if trace is not None:
            trace.event(cycle, _DECODE, inst)
            trace.event(cycle, _RENAME, inst)
            trace.event(cycle, _DISPATCH, inst)
        pop_frontend()
        renamed += 1


def macro_advance(core: CoreState, max_cycles: int,
                  budget: Optional[int] = None) -> int:
    """Advance the machine through a steady-state *linear* stretch.

    Engages when the SpecMPK unit is quiescent (no serialization drain,
    empty ROB_pkru) and the fetch stream sits inside a linear block of
    at least :data:`MACRO_MIN_LINEAR` instructions.  Each fused cycle
    runs the exact retire/writeback/issue/fetch stage functions — in
    the exact stepping order — with :func:`rename_linear` in the
    rename slot and :func:`idle_skip` folded in, so outstanding
    misses, replays, and mispredicted *older* branches resolve
    bit-identically to per-cycle stepping.  Disengages at the first
    cycle boundary where any disqualifier appears.

    Returns the number of cycles advanced (0 = not engaged; a cycle
    that retires HALT or commits a fault counts as 1, mirroring
    ``step_cycle``'s early return).
    """
    if core.serialize_block is not None or core.specmpk.occupancy:
        return 0
    if core.fetch_stopped:
        # Back-end drain: idle_skip already covers the idle cycles and
        # the busy ones are too few to amortize an engagement.
        return 0
    schedule = core.schedule
    # Memoized engagement probe: while fetch sits at the same PC
    # (buffer full, redirect penalty), the verdict cannot change.
    pc = core.fetch_pc
    if pc != core._macro_probe_pc:
        block = schedule.block_at(pc)
        core._macro_probe_pc = pc
        core._macro_probe_linear = (
            block is not None and block.is_linear
            and block.length >= MACRO_MIN_LINEAR
        )
    if not core._macro_probe_linear:
        return 0
    trace = core.trace
    stats = core.stats
    specmpk = core.specmpk
    idle = core.config.idle_fast_skip
    start = core.cycle
    advanced = 0
    core.macro_step_events += 1
    while core.cycle < max_cycles:
        if budget is not None and stats.instructions_retired >= budget:
            break
        if idle and idle_skip(core, max_cycles):
            continue  # no stage ran; engagement state is unchanged
        if trace is not None:
            this_cycle = core.cycle
            retired_before = stats.instructions_retired
        retire_stage(core)
        if core.halted or core._fault is not None:
            stats.cycles = core.cycle + 1 - core._cycle_base
            if trace is not None:
                _macro_end_cycle(core, trace, this_cycle, retired_before)
            advanced += 1  # the halting cycle, like step_cycle's early return
            break
        writeback_stage(core)
        issue_stage(core)
        rename_linear(core)
        fetch_stage(core)
        core.cycle += 1
        stats.cycles = core.cycle - core._cycle_base
        core.cycles_macro_stepped += 1
        if trace is not None:
            _macro_end_cycle(core, trace, this_cycle, retired_before)
        # Fall back to exact stepping the moment a disqualifier
        # appears: a WRPKRU renamed (serialization drain or ROB_pkru
        # allocation via the rename_linear handoff), or the fetch
        # stream reached a non-linear block.
        if core.serialize_block is not None or specmpk.occupancy:
            break
        if not core.fetch_stopped:
            pc = core.fetch_pc
            if pc != core._macro_probe_pc:
                block = schedule.block_at(pc)
                core._macro_probe_pc = pc
                core._macro_probe_linear = (
                    block is not None and block.is_linear
                    and block.length >= MACRO_MIN_LINEAR
                )
            if not core._macro_probe_linear:
                break
    return (core.cycle - start) + advanced


def _macro_end_cycle(core: CoreState, trace, this_cycle: int,
                     retired_before: int) -> None:
    """``Simulator._trace_end_cycle``, replicated for the fused loop."""
    trace.end_cycle(
        this_cycle,
        core.stats.instructions_retired - retired_before,
        len(core.frontend),
        len(core.active_list),
        core.iq_count,
        len(core.load_queue),
        len(core.store_queue),
        core.specmpk.occupancy,
    )

"""Fast-path layer: multi-cycle advancement of quiescent stretches.

The staged engine steps one cycle at a time only when a stage can make
progress.  For cycles where every stage would provably be a no-op —
nothing retires, completes, issues, renames, or fetches — the clock
jumps straight to the next wakeup and the skipped cycles are credited
to exactly the counters and top-down buckets per-cycle stepping would
have bumped.  ``SimStats``, the :mod:`repro.trace` accounting, and the
SpecMPK occupancy histogram are bit-identical with the fast path on or
off (the tier-1 suite asserts this), traced or untraced.

Such stretches appear behind long L2/DRAM misses and TLB walks; under
the SERIALIZED WRPKRU policy they also appear while the front end
drains around each permission update, which is why the fast path is
where that policy's slowdown shows up as *skipped* rather than
*stepped* cycles.
"""

from __future__ import annotations

from heapq import heappop
from typing import Optional

from ..trace.collector import StallKind
from .corestate import CoreState
from .stages.rename import rename_gate


def rename_blocked(core: CoreState) -> Optional[tuple]:
    """Why rename cannot proceed this cycle: (stat, flag) or None.

    Mirrors the gate order of :func:`~.stages.rename.rename_stage` +
    :func:`~.stages.rename.rename_gate` exactly; used only by the fast
    path, which charges the returned counter once per skipped cycle.
    """
    if not core.frontend:
        return ("rename_stall_empty", StallKind.FRONTEND_EMPTY)
    inst = core.frontend[0]
    if inst.fetch_cycle + core.config.frontend_depth > core.cycle:
        return (None, StallKind.FRONTEND_EMPTY)
    if core.serialize_block is not None:
        return ("rename_stall_wrpkru", StallKind.WRPKRU_SERIALIZATION)
    if len(core.active_list) >= core.config.active_list_size:
        return ("rename_stall_al_full", StallKind.BACKEND_AL_FULL)
    return rename_gate(core, inst.static)


def idle_skip(core: CoreState, max_cycles: int) -> int:
    """Fast-forward the clock over fully idle cycles.

    A cycle is idle when every stage would be a no-op: nothing can
    retire (the Active List head is waiting on a scheduled
    completion), nothing writes back this cycle, nothing is ready
    to issue, rename is blocked by a cause only a future completion
    can clear, and fetch is stalled.  Instead of stepping through
    such stretches one bookkeeping cycle at a time, jump the clock to
    the next wakeup and credit the skipped cycles (see module
    docstring).

    Returns the number of cycles skipped; 0 means "not idle, step
    normally".
    """
    # Cheapest discriminators first: most cycles are busy and must
    # bail out of this probe almost for free.
    events = core.events
    cycle = core.cycle
    if cycle in events:
        return 0  # a completion writes back this cycle
    heap = core.ready_heap
    while heap:
        top = heap[0][1]
        if top.squashed or top.issued:
            heappop(heap)  # exactly what issue_stage would discard
        else:
            return 0  # something can issue
    if core._mem_retry and core.mem_parked:
        return 0  # parked memory accesses must be rescanned
    tlb_flag = 0
    active_list = core.active_list
    if active_list:
        head = active_list[0]
        if head.completed:
            return 0  # retirement proceeds
        static = head.static
        if head.replay_at_head and not head.replay_started:
            return 0  # the head starts its non-speculative replay
        if not head.executed and (
            head.is_rdpkru or static.is_lfence or static.is_clflush
        ):
            return 0  # executes at the head this cycle
        if (
            (head.replay_at_head or head.replay_started)
            and head.replay_reason == "tlb"
        ):
            tlb_flag = StallKind.TLB  # retire stage raises this flag
    blocked = rename_blocked(core)
    if blocked is None:
        return 0  # rename makes progress
    cfg = core.config
    fetch_has_room = (
        not core.fetch_stopped
        and len(core.frontend) < 4 * cfg.fetch_width
    )
    if fetch_has_room and core.fetch_resume_cycle <= cycle:
        return 0  # fetch makes progress

    # Idle.  Wake at the next scheduled completion, or earlier if a
    # time-driven stall (redirect penalty, front-end pipe depth)
    # expires first.
    wake = min(events) if events else max_cycles
    if fetch_has_room and core.fetch_resume_cycle > cycle:
        wake = min(wake, core.fetch_resume_cycle)
    if core.frontend:
        depth_ready = core.frontend[0].fetch_cycle + cfg.frontend_depth
        if depth_ready > cycle:
            wake = min(wake, depth_ready)
    wake = min(wake, max_cycles)
    skipped = wake - cycle
    if skipped <= 0:
        return 0

    core.cycles_fast_skipped += skipped
    core.fast_skip_events += 1
    stat, flag = blocked
    stats = core.stats
    if stat is not None:
        # The same rename-stall counter a per-cycle step would have
        # bumped once per idle cycle.
        setattr(stats, stat, getattr(stats, stat) + skipped)
    core.cycle = wake
    stats.cycles = wake - core._cycle_base
    if core.trace is not None:
        core.trace.skip_cycles(
            cycle,
            skipped,
            int(flag | tlb_flag),
            (
                len(core.frontend), len(active_list), core.iq_count,
                len(core.load_queue), len(core.store_queue),
                core.specmpk.occupancy,
            ),
        )
    return skipped

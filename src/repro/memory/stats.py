"""Shared access-statistics type for every memory-system structure.

``Cache`` and ``Tlb`` used to carry separate counter classes repeating
the same ``accesses``/hit-rate arithmetic; the array backends would
have added two more.  One :class:`AccessStats` now serves every
structure and every backend, so the differential suite
(``tests/memory/test_array_backend.py``) compares a single type and
the obs layer reads one shape.

Fields a structure never touches simply stay zero (a cache never
defers a fill; a TLB never evicts a single entry outside a flush).
"""

from __future__ import annotations

from typing import Dict


class AccessStats:
    """Hit/miss/fill/eviction counters shared by caches and TLBs.

    The same instance shape is used by the dict and the array backends;
    the bit-identity contract between them is asserted over
    :meth:`as_dict`.
    """

    __slots__ = (
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "fills",
        "deferred_fills",
        "flushes",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.fills = 0
        self.deferred_fills = 0
        self.flushes = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Every counter, by name — the differential-test observable."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"AccessStats({inner})"

"""Memory-backend selection: dict structures vs numpy array structures.

The simulator ships two bit-identical implementations of every
memory-system structure:

* ``dict``  — the original :class:`~repro.memory.cache.Cache` /
  :class:`~repro.memory.tlb.Tlb` built on ``OrderedDict`` recency
  order; and
* ``array`` — :class:`~repro.memory.arraymem.ArrayCache` /
  :class:`~repro.memory.arraymem.ArrayTlb` built on flat numpy
  tag/stamp arrays with integer-coded scalar kernels and vectorized
  batch probes.

``REPRO_ARRAY_MEM`` (default on) picks the backend; the factories here
are the single construction point so :class:`MemoryHierarchy` and
:class:`CoreState` never branch on it themselves.  Both backends share
:class:`~repro.memory.stats.AccessStats`, and the differential suite
asserts the state machines are indistinguishable, so flipping the flag
changes wall-clock only — never a counter, an eviction, or a
Flush+Reload observation.
"""

from __future__ import annotations

from typing import Optional

from ..perf.envflag import env_flag
from .cache import Cache
from .page_table import PageTable
from .tlb import Tlb


def array_mem_enabled() -> bool:
    """True when the numpy array backend is selected (the default)."""
    return env_flag("REPRO_ARRAY_MEM", default=True)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalise an explicit backend name or consult the env flag."""
    if backend is None:
        return "array" if array_mem_enabled() else "dict"
    if backend not in ("array", "dict"):
        raise ValueError(f"unknown memory backend: {backend!r}")
    return backend


def make_cache(name: str, size: int, assoc: int, line_size: int = 64,
               latency: int = 1, backend: Optional[str] = None):
    """Construct one cache level on the selected backend."""
    if resolve_backend(backend) == "array":
        from .arraymem import ArrayCache

        return ArrayCache(name, size, assoc, line_size, latency)
    return Cache(name, size, assoc, line_size, latency)


def make_tlb(page_table: PageTable, entries: int = 64,
             walk_latency: int = 30, backend: Optional[str] = None):
    """Construct a TLB on the selected backend."""
    if resolve_backend(backend) == "array":
        from .arraymem import ArrayTlb

        return ArrayTlb(page_table, entries, walk_latency)
    return Tlb(page_table, entries, walk_latency)

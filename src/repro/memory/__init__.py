"""Memory substrate: physical memory, page tables, TLBs, caches, DRAM."""

from .address_space import AddressSpace
from .backend import array_mem_enabled, make_cache, make_tlb, resolve_backend
from .page_table import PAGE_SHIFT, PAGE_SIZE, PageTable, PageTableEntry, vpn_of
from .physical import WORD_SIZE, MemoryImage, PhysicalMemory
from .stats import AccessStats

__all__ = [
    "AccessStats",
    "AddressSpace",
    "MemoryImage",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageTable",
    "PageTableEntry",
    "PhysicalMemory",
    "WORD_SIZE",
    "array_mem_enabled",
    "make_cache",
    "make_tlb",
    "resolve_backend",
    "vpn_of",
]

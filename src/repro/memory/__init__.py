"""Memory substrate: physical memory, page tables, TLBs, caches, DRAM."""

from .address_space import AddressSpace
from .page_table import PAGE_SHIFT, PAGE_SIZE, PageTable, PageTableEntry, vpn_of
from .physical import WORD_SIZE, MemoryImage, PhysicalMemory

__all__ = [
    "AddressSpace",
    "MemoryImage",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageTable",
    "PageTableEntry",
    "PhysicalMemory",
    "WORD_SIZE",
    "vpn_of",
]

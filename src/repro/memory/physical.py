"""Physical memory: a sparse store of aligned 64-bit words.

Addresses must be 8-byte aligned; the ISA has a single LD/ST width.
Unaligned accesses raise :class:`AlignmentFault`, which doubles as an
invariant check on the synthetic workload generators.
"""

from __future__ import annotations

from typing import Dict

from ..mpk.faults import AlignmentFault

WORD_SIZE = 8
MASK64 = (1 << 64) - 1


class PhysicalMemory:
    """Sparse word-addressed backing store (zero-initialised)."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def check_alignment(self, address: int, access: str) -> None:
        if address % WORD_SIZE != 0:
            raise AlignmentFault(address, access)

    def read_word(self, address: int) -> int:
        self.check_alignment(address, "read")
        return self._words.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        self.check_alignment(address, "write")
        self._words[address] = value & MASK64

    def snapshot(self) -> Dict[int, int]:
        """Copy of all non-zero words (for golden-model comparison)."""
        return {addr: value for addr, value in self._words.items() if value}

    def __len__(self) -> int:
        return len(self._words)

"""Physical memory: a sparse store of aligned 64-bit words.

Addresses must be 8-byte aligned; the ISA has a single LD/ST width.
Unaligned accesses raise :class:`AlignmentFault`, which doubles as an
invariant check on the synthetic workload generators.

Snapshotting: :meth:`PhysicalMemory.snapshot_image` captures the memory
as an immutable :class:`MemoryImage`.  Images form a copy-on-write
chain — after the first (full) image, each subsequent one stores only
the pages written since its parent was taken, sharing every clean page
by reference.  Fast-forwarding a program and checkpointing it at many
interval boundaries therefore costs O(dirty pages) per checkpoint, not
O(footprint).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..mpk.faults import AlignmentFault

WORD_SIZE = 8
MASK64 = (1 << 64) - 1

#: Snapshot granularity: one dirty bit per 4 KiB page, matching the
#: page table so a checkpoint's unit of sharing is the MMU page.
_PAGE_SHIFT = 12


class MemoryImage:
    """One immutable snapshot in a copy-on-write chain.

    ``pages`` maps page number -> ``{address: word}`` for every page
    dirtied since ``parent`` was captured (for a root image: every
    non-empty page).  A page present in a child completely overrides
    the parent's version of that page.  Images are picklable, so they
    can cross process boundaries inside a checkpoint.
    """

    __slots__ = ("parent", "pages")

    def __init__(
        self,
        parent: Optional["MemoryImage"],
        pages: Dict[int, Dict[int, int]],
    ) -> None:
        self.parent = parent
        self.pages = pages

    def materialize(self) -> Dict[int, int]:
        """Flatten the chain into a fresh ``{address: word}`` dict."""
        merged: Dict[int, Dict[int, int]] = {}
        node: Optional[MemoryImage] = self
        while node is not None:
            for page, words in node.pages.items():
                if page not in merged:  # youngest version wins
                    merged[page] = words
            node = node.parent
        flat: Dict[int, int] = {}
        for words in merged.values():
            flat.update(words)
        return flat

    def chain_length(self) -> int:
        length = 0
        node: Optional[MemoryImage] = self
        while node is not None:
            length += 1
            node = node.parent
        return length

    def dirty_pages(self) -> int:
        """Pages stored in this link only (full footprint for a root)."""
        return len(self.pages)


class PhysicalMemory:
    """Sparse word-addressed backing store (zero-initialised)."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        #: Pages written since the last :meth:`snapshot_image` (or ever,
        #: before the first snapshot).
        self._dirty_pages: Set[int] = set()
        self._last_image: Optional[MemoryImage] = None

    def check_alignment(self, address: int, access: str) -> None:
        if address % WORD_SIZE != 0:
            raise AlignmentFault(address, access)

    def read_word(self, address: int) -> int:
        self.check_alignment(address, "read")
        return self._words.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        self.check_alignment(address, "write")
        self._words[address] = value & MASK64
        self._dirty_pages.add(address >> _PAGE_SHIFT)

    def snapshot(self) -> Dict[int, int]:
        """Copy of all non-zero words (for golden-model comparison)."""
        return {addr: value for addr, value in self._words.items() if value}

    # -- copy-on-write imaging --------------------------------------------

    def _pages_of(self, page_numbers) -> Dict[int, Dict[int, int]]:
        pages: Dict[int, Dict[int, int]] = {page: {} for page in page_numbers}
        for address, value in self._words.items():
            page = address >> _PAGE_SHIFT
            if page in pages:
                pages[page][address] = value
        return pages

    def snapshot_image(self) -> MemoryImage:
        """Capture the current contents as a :class:`MemoryImage`.

        The first image is a full copy; each later one stores only the
        pages dirtied since the previous image and chains to it.
        """
        if self._last_image is None:
            all_pages = {addr >> _PAGE_SHIFT for addr in self._words}
            image = MemoryImage(None, self._pages_of(all_pages))
        else:
            image = MemoryImage(
                self._last_image, self._pages_of(self._dirty_pages)
            )
        self._last_image = image
        self._dirty_pages.clear()
        return image

    def restore_image(self, image: MemoryImage) -> None:
        """Reset the contents to *image* (continuing its CoW chain)."""
        self._words = image.materialize()
        self._last_image = image
        self._dirty_pages.clear()

    def __len__(self) -> int:
        return len(self._words)

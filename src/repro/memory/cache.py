"""Set-associative cache model with LRU replacement.

Tracks presence only (no data — values always come from the
architectural :class:`~repro.memory.address_space.AddressSpace`); what
matters for the paper is *timing*: hits vs misses are the substrate of
the Flush+Reload side channel in Fig. 13.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from .stats import AccessStats

#: Cache counters are the shared memory-system stats type; the alias
#: keeps the historical name importable.
CacheStats = AccessStats


class Cache:
    """One level of set-associative cache.

    Args:
        name: Label used in statistics output.
        size: Capacity in bytes.
        assoc: Associativity (ways per set).
        line_size: Line size in bytes (power of two).
        latency: Round-trip hit latency in cycles.
    """

    def __init__(
        self, name: str, size: int, assoc: int, line_size: int = 64, latency: int = 1
    ) -> None:
        if size % (assoc * line_size) != 0:
            raise ValueError(f"{name}: size not divisible by assoc*line_size")
        if line_size & (line_size - 1):
            raise ValueError(f"{name}: line size must be a power of two")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self.num_sets = size // (assoc * line_size)
        self._line_shift = line_size.bit_length() - 1
        # Each set is an OrderedDict tag -> True in LRU order (front = LRU).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- address helpers ----------------------------------------------------

    def line_of(self, address: int) -> int:
        return address >> self._line_shift

    def _index_tag(self, address: int):
        line = self.line_of(address)
        return line % self.num_sets, line // self.num_sets

    # -- operations ----------------------------------------------------------

    def lookup(self, address: int) -> bool:
        """Probe for *address*; refresh LRU on hit.  Counts statistics."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-mutating, non-counting presence check (for assertions)."""
        index, tag = self._index_tag(address)
        return tag in self._sets[index]

    def fill(self, address: int) -> None:
        """Install the line holding *address*, evicting LRU if needed."""
        index, tag = self._index_tag(address)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[tag] = True
        self.stats.fills += 1

    def invalidate(self, address: int) -> bool:
        """CLFLUSH one line; True when it was present."""
        index, tag = self._index_tag(address)
        present = self._sets[index].pop(tag, None) is not None
        if present:
            self.stats.invalidations += 1
        return present

    def flush_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

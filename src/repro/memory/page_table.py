"""Page table with MPK protection-key bits in each PTE.

PTEs carry the 4-bit pKey field described in SSII-A of the paper: the
key is recorded at map time (``pkey_mprotect``) and returned on every
translation so the permission check can index the PKRU register.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..mpk.faults import SegmentationFault
from ..mpk.pkru import NUM_PKEYS

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_OFFSET_MASK = PAGE_SIZE - 1


class PageTableEntry:
    """One PTE: frame number, RW permission bits, and the pKey colour."""

    __slots__ = ("frame", "readable", "writable", "pkey")

    def __init__(
        self, frame: int, readable: bool = True, writable: bool = True, pkey: int = 0
    ) -> None:
        if not 0 <= pkey < NUM_PKEYS:
            raise ValueError(f"pkey {pkey} out of range")
        self.frame = frame
        self.readable = readable
        self.writable = writable
        self.pkey = pkey

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ("r" if self.readable else "-") + ("w" if self.writable else "-")
        return f"PTE(frame={self.frame:#x}, {flags}, pkey={self.pkey})"


def vpn_of(address: int) -> int:
    """Virtual page number containing *address*."""
    return address >> PAGE_SHIFT


def page_offset(address: int) -> int:
    return address & PAGE_OFFSET_MASK


class PageTable:
    """Flat virtual-page-number -> PTE mapping.

    Pages are identity-mapped (frame == vpn) by default; the frame field
    exists so translation is a real lookup rather than a pass-through.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, PageTableEntry] = {}
        #: Monotonic generation number; bumped by any PTE change so TLBs
        #: can detect staleness in assertions (mprotect needs shootdowns,
        #: pkey_mprotect at map time only).
        self.generation = 0

    def map_page(
        self,
        vpn: int,
        readable: bool = True,
        writable: bool = True,
        pkey: int = 0,
        frame: Optional[int] = None,
    ) -> PageTableEntry:
        entry = PageTableEntry(
            frame if frame is not None else vpn,
            readable=readable,
            writable=writable,
            pkey=pkey,
        )
        self._entries[vpn] = entry
        self.generation += 1
        return entry

    def map_range(
        self, base: int, size: int, readable=True, writable=True, pkey: int = 0
    ) -> None:
        """Map every page overlapping ``[base, base + size)``."""
        first = vpn_of(base)
        last = vpn_of(base + size - 1)
        for vpn in range(first, last + 1):
            self.map_page(vpn, readable=readable, writable=writable, pkey=pkey)

    def unmap_page(self, vpn: int) -> None:
        self._entries.pop(vpn, None)
        self.generation += 1

    def lookup(self, address: int, access: str = "read") -> PageTableEntry:
        """Translate; raise :class:`SegmentationFault` when unmapped."""
        entry = self._entries.get(vpn_of(address))
        if entry is None:
            raise SegmentationFault(address, access)
        return entry

    def try_lookup(self, address: int) -> Optional[PageTableEntry]:
        return self._entries.get(vpn_of(address))

    def set_pkey(self, base: int, size: int, pkey: int) -> int:
        """``pkey_mprotect``: recolour every mapped page in the range.

        Returns the number of pages recoloured.  Unlike ``mprotect``
        this touches only the pKey field, so no TLB shootdown is needed
        (the permission source of truth moves to PKRU).
        """
        first = vpn_of(base)
        last = vpn_of(base + size - 1)
        count = 0
        for vpn in range(first, last + 1):
            entry = self._entries.get(vpn)
            if entry is None:
                raise SegmentationFault(vpn << PAGE_SHIFT, "pkey_mprotect")
            if not 0 <= pkey < NUM_PKEYS:
                raise ValueError(f"pkey {pkey} out of range")
            entry.pkey = pkey
            count += 1
        # Recolouring rewrites PTEs; bump generation so TLBs refill.
        self.generation += 1
        return count

    def mprotect(self, base: int, size: int, readable: bool, writable: bool) -> int:
        """Classic ``mprotect``: rewrite RW bits (requires TLB shootdown)."""
        first = vpn_of(base)
        last = vpn_of(base + size - 1)
        count = 0
        for vpn in range(first, last + 1):
            entry = self._entries.get(vpn)
            if entry is None:
                raise SegmentationFault(vpn << PAGE_SHIFT, "mprotect")
            entry.readable = readable
            entry.writable = writable
            count += 1
        self.generation += 1
        return count

    def mapped_pages(self) -> int:
        return len(self._entries)

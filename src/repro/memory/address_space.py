"""Architectural address space: page table + physical memory + MPK checks.

This is the *functional* view of memory shared by the golden emulator
and the timing simulator.  The timing simulator layers TLBs and caches
on top for latency; correctness (values, faults) always comes from here.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..mpk.permissions import READ, WRITE, check_access
from .page_table import PAGE_SIZE, PageTable
from .physical import WORD_SIZE, MemoryImage, PhysicalMemory


class AddressSpace:
    """One process's memory image.

    An existing *page_table* may be shared between address spaces whose
    protection layout is identical (state clones, checkpoint resumes):
    only the physical words are per-space.
    """

    def __init__(self, page_table: Optional[PageTable] = None) -> None:
        self.page_table = PageTable() if page_table is None else page_table
        self.physical = PhysicalMemory()

    # -- setup ------------------------------------------------------------

    def map_region(self, region) -> None:
        """Map and initialise one program data region.

        *region* is any object with ``base``/``size``/``pkey``/``init``
        attributes (duck-typed to avoid a circular dependency on
        :class:`repro.isa.program.DataRegion`).
        """
        self.page_table.map_range(
            region.base, region.size, readable=True, writable=True, pkey=region.pkey
        )
        for offset, value in region.init.items():
            if not 0 <= offset < region.size:
                raise ValueError(
                    f"init offset {offset} outside region {region.name!r}"
                )
            self.physical.write_word(region.base + offset, value)

    def map_regions(self, regions: Iterable[DataRegion]) -> None:
        for region in regions:
            self.map_region(region)

    def pkey_mprotect(self, base: int, size: int, pkey: int) -> int:
        """Colour an address range with *pkey* (Linux syscall analogue)."""
        return self.page_table.set_pkey(base, size, pkey)

    def mprotect(self, base: int, size: int, readable: bool, writable: bool) -> int:
        return self.page_table.mprotect(base, size, readable, writable)

    # -- architectural access ----------------------------------------------

    def load(self, address: int, pkru: int) -> int:
        """Architectural load with full MPK permission checking."""
        self.physical.check_alignment(address, READ)
        entry = self.page_table.lookup(address, READ)
        check_access(address, READ, entry.pkey, entry.readable, entry.writable, pkru)
        return self.physical.read_word(address)

    def store(self, address: int, value: int, pkru: int) -> None:
        """Architectural store with full MPK permission checking."""
        self.physical.check_alignment(address, WRITE)
        entry = self.page_table.lookup(address, WRITE)
        check_access(address, WRITE, entry.pkey, entry.readable, entry.writable, pkru)
        self.physical.write_word(address, value)

    def peek(self, address: int) -> int:
        """Read without permission checks (test/debug access)."""
        return self.physical.read_word(address)

    def poke(self, address: int, value: int) -> None:
        """Write without permission checks (test/debug access)."""
        self.physical.write_word(address, value)

    def pkey_of(self, address: int) -> Optional[int]:
        entry = self.page_table.try_lookup(address)
        return entry.pkey if entry is not None else None

    def snapshot(self):
        return self.physical.snapshot()

    # -- checkpointing ------------------------------------------------------

    def snapshot_image(self) -> MemoryImage:
        """Dirty-page CoW image of the data contents (see
        :class:`~repro.memory.physical.MemoryImage`).  The page table is
        not captured: protection layout is program-defined setup state,
        so a restore target must be mapped identically (checked via the
        page-table generation in :class:`repro.state.ArchSnapshot`)."""
        return self.physical.snapshot_image()

    def restore_image(self, image: MemoryImage) -> None:
        self.physical.restore_image(image)


__all__ = ["AddressSpace", "MemoryImage", "PAGE_SIZE", "WORD_SIZE"]

"""Multi-level cache hierarchy with DRAM backing (Table III geometry).

``access`` walks L1 -> L2 -> L3 -> DRAM, fills upward on miss, and
returns the round-trip latency of the level that hit.  Instruction and
data sides share L2/L3.  The model is presence/latency only; values are
architectural and come from :class:`~repro.memory.AddressSpace`.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from .backend import make_cache, resolve_backend
from .cache import Cache


class CacheGeometry(NamedTuple):
    """Size/associativity/latency triple for one cache level."""

    size: int
    assoc: int
    latency: int


#: Table III values.
DEFAULT_L1I = CacheGeometry(32 * 1024, 8, 5)
DEFAULT_L1D = CacheGeometry(48 * 1024, 12, 5)
DEFAULT_L2 = CacheGeometry(512 * 1024, 8, 15)
DEFAULT_L3 = CacheGeometry(2 * 1024 * 1024, 16, 40)
#: Round-trip latency of a DDR4_2400-class access, in core cycles.
DEFAULT_DRAM_LATENCY = 150


class MemoryHierarchy:
    """L1D (+ optional L1I) / L2 / L3 / DRAM."""

    def __init__(
        self,
        l1d: CacheGeometry = DEFAULT_L1D,
        l1i: Optional[CacheGeometry] = DEFAULT_L1I,
        l2: CacheGeometry = DEFAULT_L2,
        l3: CacheGeometry = DEFAULT_L3,
        dram_latency: int = DEFAULT_DRAM_LATENCY,
        line_size: int = 64,
        prefetch_next_line: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.l1d = make_cache(
            "L1D", l1d.size, l1d.assoc, line_size, l1d.latency, self.backend
        )
        self.l1i = (
            make_cache("L1I", l1i.size, l1i.assoc, line_size, l1i.latency,
                       self.backend)
            if l1i is not None
            else None
        )
        self.l2 = make_cache(
            "L2", l2.size, l2.assoc, line_size, l2.latency, self.backend
        )
        self.l3 = make_cache(
            "L3", l3.size, l3.assoc, line_size, l3.latency, self.backend
        )
        self.dram_latency = dram_latency
        self.line_size = line_size
        self.prefetch_next_line = prefetch_next_line
        self.prefetches_issued = 0

    # -- data side -----------------------------------------------------------

    def access(self, address: int) -> int:
        """Data access: return latency, filling caches along the miss path.

        This mutates cache state — a speculative wrong-path call is
        exactly the transmitter of a cache side channel.
        """
        if self.l1d.lookup(address):
            return self.l1d.latency
        if self.l2.lookup(address):
            self.l1d.fill(address)
            return self.l2.latency
        if self.l3.lookup(address):
            self.l1d.fill(address)
            self.l2.fill(address)
            return self.l3.latency
        self.l1d.fill(address)
        self.l2.fill(address)
        self.l3.fill(address)
        if self.prefetch_next_line:
            self._prefetch(address + self.line_size)
        return self.dram_latency

    def _prefetch(self, address: int) -> None:
        """Next-line prefetch into L2/L3 (no L1 pollution, no timing
        cost — an idealised stride-1 prefetcher)."""
        if not self.l2.contains(address):
            self.l2.fill(address)
            self.l3.fill(address)
            self.prefetches_issued += 1

    def probe_latency(self, address: int) -> int:
        """Latency the next access *would* see, without touching state.

        The Flush+Reload receiver uses this as its timer readout.
        """
        if self.l1d.contains(address):
            return self.l1d.latency
        if self.l2.contains(address):
            return self.l2.latency
        if self.l3.contains(address):
            return self.l3.latency
        return self.dram_latency

    def probe_latency_many(self, addresses: Sequence[int]) -> List[int]:
        """Batch :meth:`probe_latency` over a whole address stream.

        Probes are non-mutating, so element order provably cannot
        matter and the whole stream is legal to check in one pass.  On
        the array backend each level answers with one vectorized sweep
        of its tag matrix; the dict backend falls back to per-address
        probes with identical results.
        """
        if not hasattr(self.l1d, "contains_many"):
            return [self.probe_latency(a) for a in addresses]
        latencies = [self.dram_latency] * len(addresses)
        # Walk outermost-in so nearer levels overwrite farther ones,
        # mirroring the early-outs of the scalar probe.
        for cache in (self.l3, self.l2, self.l1d):
            hits = cache.contains_many(addresses)
            latency = cache.latency
            for i in hits.nonzero()[0]:
                latencies[i] = latency
        return latencies

    def is_cached(self, address: int) -> bool:
        return (
            self.l1d.contains(address)
            or self.l2.contains(address)
            or self.l3.contains(address)
        )

    def clflush(self, address: int) -> None:
        """Invalidate the line from every level (CLFLUSH semantics)."""
        self.l1d.invalidate(address)
        if self.l1i is not None:
            self.l1i.invalidate(address)
        self.l2.invalidate(address)
        self.l3.invalidate(address)

    def flush_all(self) -> None:
        for cache in self._levels():
            cache.flush_all()

    # -- instruction side ------------------------------------------------------

    def fetch_access(self, address: int) -> int:
        """Instruction fetch: L1I then the shared L2/L3."""
        if self.l1i is None:
            return 0
        if self.l1i.lookup(address):
            return self.l1i.latency
        if self.l2.lookup(address):
            self.l1i.fill(address)
            return self.l2.latency
        if self.l3.lookup(address):
            self.l1i.fill(address)
            self.l2.fill(address)
            return self.l3.latency
        self.l1i.fill(address)
        self.l2.fill(address)
        self.l3.fill(address)
        return self.dram_latency

    def _levels(self) -> List[Cache]:
        levels = [self.l1d, self.l2, self.l3]
        if self.l1i is not None:
            levels.insert(1, self.l1i)
        return levels

    def stats_report(self) -> str:
        lines = []
        for cache in self._levels():
            s = cache.stats
            lines.append(
                f"{cache.name}: {s.accesses} accesses, "
                f"{s.miss_rate:.1%} miss rate, {s.evictions} evictions"
            )
        return "\n".join(lines)

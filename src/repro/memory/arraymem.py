"""Array-backed cache and TLB models (the ``REPRO_ARRAY_MEM`` backend).

The dict backend (:mod:`repro.memory.cache`, :mod:`repro.memory.tlb`)
keeps one ``OrderedDict`` per cache set and one global ``OrderedDict``
for the TLB; recency is encoded in dict *order* and every touch is a
``move_to_end``.  The array backend stores the same state in flat
arrays instead:

* ``lines``  — line/VPN number per way slot, ``-1`` when invalid (the
  tag *and* the set index in one integer, since
  ``line = tag * num_sets + set``);
* ``stamps`` — last-touch timestamp per way slot, drawn from one
  strictly monotonic counter.

Replacement is *exactly* LRU-by-last-touch in both backends: the dict
evicts its front entry, the arrays evict the slot with the minimal
stamp.  Because stamps are unique and assigned at the same touch
points (lookup hit, fill refresh, install), the victim choice — and
therefore every downstream hit/miss/eviction/fill counter and the
Flush+Reload-visible cache state — is bit-identical.  The differential
suite in ``tests/memory/test_array_backend.py`` asserts this over
random address streams, aliasing tags, and capacity/conflict patterns.

Two access grains:

* the **scalar kernel** (``lookup``/``fill``/``invalidate``) is
  integer-coded over flat Python lists plus a line-number -> slot
  index, so a probe is one hash lookup and one list store.  The
  scalar path deliberately does NOT touch numpy: per-element numpy
  operations pay ~1 microsecond of ufunc dispatch on the tiny
  per-set slices this model sees, an order of magnitude more than
  the C-level list/dict operations they would replace (measured in
  ``docs/performance.md`` section 7);
* the **batch kernel** (``contains_many``) probes a whole address
  stream in one vectorized pass over a numpy view of the tag array,
  materialized lazily and re-synced only after scalar mutations.  It
  is non-mutating, so it is only legal where event order provably
  cannot matter — presence probes (the Flush+Reload receiver's timer
  sweep, ``MemoryHierarchy.probe_latency_many``) and prewarm planning
  — and that is the only batching the hierarchy does.

``REPRO_ARRAY_MEM=0`` (see :mod:`repro.memory.backend`) selects the
dict backend everywhere.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .page_table import PAGE_SHIFT, PageTable
from .stats import AccessStats
from .tlb import TlbEntry


class ArrayCache:
    """Set-associative LRU cache over flat tag/stamp arrays.

    Drop-in replacement for :class:`repro.memory.cache.Cache`: same
    constructor, same operations, same :class:`AccessStats` counters,
    and provably the same eviction order (see module docstring).
    """

    def __init__(
        self, name: str, size: int, assoc: int, line_size: int = 64,
        latency: int = 1,
    ) -> None:
        if size % (assoc * line_size) != 0:
            raise ValueError(f"{name}: size not divisible by assoc*line_size")
        if line_size & (line_size - 1):
            raise ValueError(f"{name}: line size must be a power of two")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.latency = latency
        self.num_sets = size // (assoc * line_size)
        self._line_shift = line_size.bit_length() - 1
        slots = self.num_sets * assoc
        #: Line number per way slot (-1 = invalid).  Authoritative tag
        #: state for replacement and the batch kernel's lazy mirror.
        self._lines: List[int] = [-1] * slots
        #: Last-touch stamp per way slot (strictly monotonic clock).
        self._stamps: List[int] = [0] * slots
        self._clock = 1
        #: Scalar-kernel index: line number -> flat slot.
        self._slot_of: dict = {}
        #: Valid ways per set (free-way search without a full row scan).
        self._set_fill: List[int] = [0] * self.num_sets
        #: Lazily-synced numpy view of ``_lines`` for the batch kernel.
        self._np_lines: Optional[np.ndarray] = None
        self.stats = AccessStats()

    # -- address helpers ----------------------------------------------------

    def line_of(self, address: int) -> int:
        return address >> self._line_shift

    # -- scalar kernel -------------------------------------------------------

    def lookup(self, address: int) -> bool:
        """Probe for *address*; refresh LRU on hit.  Counts statistics."""
        slot = self._slot_of.get(address >> self._line_shift)
        if slot is not None:
            self._stamps[slot] = self._clock
            self._clock += 1
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-mutating, non-counting presence check (for assertions)."""
        return (address >> self._line_shift) in self._slot_of

    def fill(self, address: int) -> None:
        """Install the line holding *address*, evicting LRU if needed."""
        line = address >> self._line_shift
        slot_of = self._slot_of
        slot = slot_of.get(line)
        if slot is not None:
            self._stamps[slot] = self._clock
            self._clock += 1
            return
        lines = self._lines
        index = line % self.num_sets
        base = index * self.assoc
        if self._set_fill[index] >= self.assoc:
            # Set full: evict the way with the oldest touch stamp —
            # the front of the dict backend's OrderedDict.
            stamps = self._stamps
            slot = base
            best = stamps[base]
            for way in range(base + 1, base + self.assoc):
                if stamps[way] < best:
                    best = stamps[way]
                    slot = way
            del slot_of[lines[slot]]
            self.stats.evictions += 1
        else:
            slot = lines.index(-1, base, base + self.assoc)
            self._set_fill[index] += 1
        lines[slot] = line
        self._stamps[slot] = self._clock
        self._clock += 1
        slot_of[line] = slot
        self._np_lines = None
        self.stats.fills += 1

    def invalidate(self, address: int) -> bool:
        """CLFLUSH one line; True when it was present."""
        line = address >> self._line_shift
        slot = self._slot_of.pop(line, None)
        if slot is None:
            return False
        self._lines[slot] = -1
        self._set_fill[line % self.num_sets] -= 1
        self._np_lines = None
        self.stats.invalidations += 1
        return True

    def flush_all(self) -> None:
        self._lines = [-1] * (self.num_sets * self.assoc)
        self._slot_of.clear()
        self._set_fill = [0] * self.num_sets
        self._np_lines = None

    def occupancy(self) -> int:
        return len(self._slot_of)

    # -- batch kernel --------------------------------------------------------

    @property
    def lines(self) -> np.ndarray:
        """Flat int64 tag array (-1 = invalid), synced with the scalar
        state on demand."""
        if self._np_lines is None:
            self._np_lines = np.asarray(self._lines, dtype=np.int64)
        return self._np_lines

    def contains_many(self, addresses: Sequence[int]) -> np.ndarray:
        """Vectorized non-mutating presence probe of an address stream.

        Returns a boolean array aligned with *addresses*.  Counts
        nothing and refreshes nothing — exactly ``contains`` per
        element, legal wherever event order provably cannot matter.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        lines = addrs >> self._line_shift
        rows = self.lines.reshape(self.num_sets, self.assoc)
        return (rows[lines % self.num_sets] == lines[:, None]).any(axis=1)


class ArrayTlb:
    """Fully-associative LRU TLB over flat VPN/stamp arrays.

    Drop-in replacement for :class:`repro.memory.tlb.Tlb`: same
    generation-watching flush semantics, same deferred-fill hook, and
    the same LRU order (stamps vs the dict backend's OrderedDict; see
    the module docstring for the parity argument).
    """

    def __init__(self, page_table: PageTable, entries: int = 64,
                 walk_latency: int = 30) -> None:
        self.page_table = page_table
        self.capacity = entries
        self.walk_latency = walk_latency
        #: VPN per slot (-1 = invalid) and last-touch stamps.
        self._vpns: List[int] = [-1] * entries
        self._stamps: List[int] = [0] * entries
        self._clock = 1
        self._entries: List[Optional[TlbEntry]] = [None] * entries
        self._slot_of: dict = {}
        #: Slots ever filled; single-entry invalidation does not exist
        #: on this structure (only full flushes), so valid slots are
        #: always the prefix [0, fill).
        self._fill = 0
        self._np_vpns: Optional[np.ndarray] = None
        self._generation = page_table.generation
        self.stats = AccessStats()

    def _check_generation(self) -> None:
        if self._generation != self.page_table.generation:
            self._reset()
            self._generation = self.page_table.generation
            self.stats.flushes += 1

    def _reset(self) -> None:
        self._vpns = [-1] * self.capacity
        self._entries = [None] * self.capacity
        self._slot_of.clear()
        self._fill = 0
        self._np_vpns = None

    def lookup(self, address: int) -> Optional[TlbEntry]:
        """Probe the TLB; None on miss.  Does NOT walk the page table."""
        self._check_generation()
        slot = self._slot_of.get(address >> PAGE_SHIFT)
        if slot is not None:
            self._stamps[slot] = self._clock
            self._clock += 1
            self.stats.hits += 1
            return self._entries[slot]
        self.stats.misses += 1
        return None

    def walk(self, address: int) -> Optional[TlbEntry]:
        """Page-table walk (no TLB state change).  None when unmapped."""
        pte = self.page_table.try_lookup(address)
        if pte is None:
            return None
        return TlbEntry(pte.frame, pte.readable, pte.writable, pte.pkey)

    def fill(self, address: int, entry: TlbEntry) -> None:
        """Install a translation (the microarchitectural state update
        SpecMPK defers until the PKRU check succeeds)."""
        self._check_generation()
        vpn = address >> PAGE_SHIFT
        slot = self._slot_of.get(vpn)
        if slot is not None:
            self._stamps[slot] = self._clock
            self._clock += 1
            return
        if self._fill >= self.capacity:
            # Evict the oldest touch stamp — the dict backend's
            # popitem(last=False).
            stamps = self._stamps
            slot = 0
            best = stamps[0]
            for way in range(1, self.capacity):
                if stamps[way] < best:
                    best = stamps[way]
                    slot = way
            del self._slot_of[self._vpns[slot]]
        else:
            slot = self._fill
            self._fill += 1
        self._vpns[slot] = vpn
        self._stamps[slot] = self._clock
        self._clock += 1
        self._entries[slot] = entry
        self._slot_of[vpn] = slot
        self._np_vpns = None
        self.stats.fills += 1

    def note_deferred_fill(self) -> None:
        self.stats.deferred_fills += 1

    def contains(self, address: int) -> bool:
        """Non-mutating presence probe (the attack's measurement aid)."""
        self._check_generation()
        return (address >> PAGE_SHIFT) in self._slot_of

    def flush(self) -> None:
        self._reset()
        self.stats.flushes += 1

    def occupancy(self) -> int:
        self._check_generation()
        return len(self._slot_of)

    @property
    def vpns(self) -> np.ndarray:
        """Flat int64 VPN array (-1 = invalid), synced on demand."""
        if self._np_vpns is None:
            self._np_vpns = np.asarray(self._vpns, dtype=np.int64)
        return self._np_vpns

    def contains_many(self, addresses: Sequence[int]) -> np.ndarray:
        """Vectorized non-mutating presence probe (batch kernel)."""
        self._check_generation()
        addrs = np.asarray(addresses, dtype=np.int64)
        vpns = addrs >> PAGE_SHIFT
        return np.isin(vpns, self.vpns[: self._fill])

"""TLB model returning the pKey alongside the translation.

On every memory access the TLB hands back the page's pKey for the PKRU
permission check (paper SSII-A).  The TLB is itself a side channel (Gras
et al. [23]); SpecMPK therefore *defers* TLB fills for check-failing
accesses — the core decides when to call :meth:`fill`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple, Optional

from .page_table import PAGE_SHIFT, PageTable
from .stats import AccessStats


class TlbEntry(NamedTuple):
    """Cached translation: frame, RW bits, pKey."""

    frame: int
    readable: bool
    writable: bool
    pkey: int


#: TLB counters are the shared memory-system stats type; the alias
#: keeps the historical name importable.
TlbStats = AccessStats


class Tlb:
    """Fully-associative LRU TLB over a :class:`PageTable`.

    The TLB watches the page table's generation counter: any PTE change
    (mprotect, pkey_mprotect recolouring, unmap) invalidates all cached
    translations, modelling the required shootdown.  PKRU changes do
    *not* touch the page table, which is exactly why MPK avoids
    shootdowns on permission switches.
    """

    def __init__(self, page_table: PageTable, entries: int = 64,
                 walk_latency: int = 30) -> None:
        self.page_table = page_table
        self.capacity = entries
        self.walk_latency = walk_latency
        self._entries: OrderedDict = OrderedDict()
        self._generation = page_table.generation
        self.stats = TlbStats()

    def _check_generation(self) -> None:
        if self._generation != self.page_table.generation:
            self._entries.clear()
            self._generation = self.page_table.generation
            self.stats.flushes += 1

    def lookup(self, address: int) -> Optional[TlbEntry]:
        """Probe the TLB; None on miss.  Does NOT walk the page table."""
        self._check_generation()
        vpn = address >> PAGE_SHIFT
        entry = self._entries.get(vpn)
        if entry is not None:
            self._entries.move_to_end(vpn)
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return None

    def walk(self, address: int) -> Optional[TlbEntry]:
        """Page-table walk (no TLB state change).  None when unmapped."""
        pte = self.page_table.try_lookup(address)
        if pte is None:
            return None
        return TlbEntry(pte.frame, pte.readable, pte.writable, pte.pkey)

    def fill(self, address: int, entry: TlbEntry) -> None:
        """Install a translation (the microarchitectural state update
        SpecMPK defers until the PKRU check succeeds)."""
        self._check_generation()
        vpn = address >> PAGE_SHIFT
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[vpn] = entry
        self.stats.fills += 1

    def note_deferred_fill(self) -> None:
        self.stats.deferred_fills += 1

    def contains(self, address: int) -> bool:
        """Non-mutating presence probe (the attack's measurement aid)."""
        self._check_generation()
        return (address >> PAGE_SHIFT) in self._entries

    def flush(self) -> None:
        self._entries.clear()
        self.stats.flushes += 1

    def occupancy(self) -> int:
        self._check_generation()
        return len(self._entries)

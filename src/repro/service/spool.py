"""On-disk job spool: the durable state behind the batch service.

A spool directory is the unit of deployment for the sweep service —
``repro submit`` writes jobs into one, ``repro serve`` drains it, and
a killed worker resumes from it without recomputing finished runs.
Layout::

    <spool>/
      jobs/pending/<job_id>.json    submitted, not yet claimed
      jobs/running/<job_id>.json    claimed by a worker
      jobs/done/<job_id>.json       finished (result in results/)
      jobs/failed/<job_id>.json     exhausted its retry budget
      results/<job_id>.json         JSON result payload of a done job
      batches/<batch_id>.json       manifest: ordered job-id list

Every state transition is a single ``os.replace``/``os.rename`` of the
job file between state directories, so transitions are atomic on POSIX
and a *claim* (pending → running) can be won by exactly one worker —
the losers get ``FileNotFoundError`` and move on.  All JSON writes go
through temp-file + ``os.replace`` (the same discipline as the run
cache), so a SIGKILLed writer can never leave a torn file.

The **job id is the request's run-cache key**
(:meth:`~repro.harness.api.RunRequest.cache_key`): spool entries and
the content-addressed run cache share one canonical identity, which is
what makes batch deduplication exact — resubmitting a request that any
earlier batch completed lands on the same job id and the same cache
entry.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.config import CoreConfig, WrpkruPolicy
from ..harness.api import RequestError, RunRequest
from ..memory.hierarchy import CacheGeometry
from ..workloads.instrument import InstrumentMode
from ..workloads.profiles import WorkloadProfile


def default_spool_dir() -> Path:
    """``REPRO_SPOOL_DIR``, else ``$XDG_CACHE_HOME/repro/spool``."""
    override = os.environ.get("REPRO_SPOOL_DIR")
    if override:
        return Path(override).expanduser()
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "repro" / "spool"


class JobState(enum.Enum):
    """Lifecycle of one spooled job (one state directory each)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


# -- request (de)serialization ---------------------------------------------

#: CoreConfig fields holding a :class:`CacheGeometry` named tuple.
_GEOMETRY_FIELDS = ("l1i", "l1d", "l2", "l3")


def _encode_config(config: Optional[CoreConfig]) -> Optional[Dict[str, object]]:
    if config is None:
        return None
    doc: Dict[str, object] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if isinstance(value, enum.Enum):
            value = value.value
        elif isinstance(value, CacheGeometry):
            value = list(value)
        doc[field.name] = value
    return doc


def _decode_config(doc: Optional[Dict[str, object]]) -> Optional[CoreConfig]:
    if doc is None:
        return None
    kwargs = dict(doc)
    kwargs["wrpkru_policy"] = WrpkruPolicy(kwargs["wrpkru_policy"])
    for name in _GEOMETRY_FIELDS:
        if kwargs.get(name) is not None:
            kwargs[name] = CacheGeometry(*kwargs[name])
    return CoreConfig(**kwargs)


def encode_request(request: RunRequest) -> Dict[str, object]:
    """A :class:`RunRequest` as a JSON-able document.

    Only *spoolable* requests encode: the workload must be a known
    label or a :class:`WorkloadProfile` (either rebuilds
    deterministically on any worker host — a profile is just the
    generator's knobs, e.g. a seed-varied repeat from ``repro
    report``) and the run must be untraced (a trace collector cannot
    cross the service boundary).  Everything else — notably a
    pre-built :class:`~repro.workloads.generator.Workload` object —
    raises :class:`RequestError`, the same construction-time error
    type the request itself uses.
    """
    workload: object = request.workload
    if isinstance(workload, WorkloadProfile):
        workload = {"profile": dataclasses.asdict(workload)}
    elif not isinstance(workload, str) or not workload:
        raise RequestError(
            "only label-addressed or profile-addressed workloads can be "
            f"spooled; got {type(request.workload).__name__}"
        )
    if request.trace.enabled:
        raise RequestError("traced runs cannot be spooled")
    return {
        "v": 2,
        "workload": workload,
        "policy": request.policy.value,
        "mode": request.mode.value,
        "instructions": request.instructions,
        "warmup": request.warmup,
        "fastforward": request.fastforward,
        "metrics": request.metrics,
        "config": _encode_config(request.config),
        "time_shards": request.time_shards,
        "shard_warmup": request.shard_warmup,
    }


def decode_request(doc: Dict[str, object]) -> RunRequest:
    """Rebuild the :class:`RunRequest` a spool entry describes.

    Construction re-runs the request validation, so a corrupted or
    stale spool entry fails loudly with :class:`RequestError` instead
    of deep inside a worker.
    """
    workload = doc["workload"]
    if isinstance(workload, dict):
        workload = WorkloadProfile(**workload["profile"])
    return RunRequest(
        workload=workload,
        policy=WrpkruPolicy(doc["policy"]),
        mode=InstrumentMode(doc["mode"]),
        instructions=doc.get("instructions"),
        warmup=doc.get("warmup"),
        config=_decode_config(doc.get("config")),
        fastforward=bool(doc.get("fastforward", False)),
        metrics=doc.get("metrics"),
        # Absent in v1 documents: both default to None (inherit env).
        time_shards=doc.get("time_shards"),
        shard_warmup=doc.get("shard_warmup"),
    )


# -- the spool directory ----------------------------------------------------


def _atomic_write_json(path: Path, doc: Dict[str, object]) -> None:
    temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    temp.write_text(json.dumps(doc, sort_keys=True))
    os.replace(temp, path)


class SpoolDir:
    """One spool directory: job files, result payloads, batch manifests."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def ensure(self) -> "SpoolDir":
        for state in JobState:
            self._state_dir(state).mkdir(parents=True, exist_ok=True)
        (self.root / "results").mkdir(parents=True, exist_ok=True)
        (self.root / "batches").mkdir(parents=True, exist_ok=True)
        return self

    # -- paths -------------------------------------------------------------

    def _state_dir(self, state: JobState) -> Path:
        return self.root / "jobs" / state.value

    def _job_path(self, state: JobState, job_id: str) -> Path:
        return self._state_dir(state) / f"{job_id}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.root / "results" / f"{job_id}.json"

    def _batch_path(self, batch_id: str) -> Path:
        return self.root / "batches" / f"{batch_id}.json"

    # -- jobs --------------------------------------------------------------

    def add_job(self, request: RunRequest) -> Tuple[str, JobState, bool]:
        """Spool one request; returns ``(job_id, state, created)``.

        The job id is :meth:`RunRequest.cache_key`.  A job that already
        exists in *any* state is not re-created (``created=False``) —
        that is the submission-side half of batch deduplication.
        """
        job_id = request.cache_key()
        if job_id is None:
            raise RequestError(
                "request has no canonical cache key and cannot be spooled "
                "(traced run or pre-built workload object)"
            )
        doc = encode_request(request)  # validates spoolability
        state = self.state_of(job_id)
        if state is not None:
            return job_id, state, False
        self.ensure()
        _atomic_write_json(
            self._job_path(JobState.PENDING, job_id),
            {"id": job_id, "request": doc, "attempts": 0, "error": None},
        )
        return job_id, JobState.PENDING, True

    def state_of(self, job_id: str) -> Optional[JobState]:
        for state in JobState:
            if self._job_path(state, job_id).exists():
                return state
        return None

    def jobs(self, state: JobState) -> List[str]:
        """Job ids currently in *state*, sorted for determinism."""
        directory = self._state_dir(state)
        if not directory.is_dir():
            return []
        return sorted(
            path.stem for path in directory.glob("*.json")
            if not path.name.startswith(".")
        )

    def job_doc(self, job_id: str) -> Optional[Dict[str, object]]:
        """The job document, from whichever state directory holds it."""
        for state in JobState:
            path = self._job_path(state, job_id)
            try:
                return json.loads(path.read_text())
            except OSError:
                continue
        return None

    def claim(self, job_id: str) -> Optional[Dict[str, object]]:
        """Move pending → running and return the job document.

        The rename is the claim: with several workers racing, exactly
        one wins; everyone else gets None.
        """
        src = self._job_path(JobState.PENDING, job_id)
        dst = self._job_path(JobState.RUNNING, job_id)
        try:
            os.replace(src, dst)
        except FileNotFoundError:
            return None
        return json.loads(dst.read_text())

    def complete(self, job_id: str, payload: Dict[str, object]) -> None:
        """Persist the result payload, then move running → done.

        The payload lands (atomically) *before* the state flips, so a
        job in ``done/`` always has a readable result.
        """
        _atomic_write_json(self._result_path(job_id), payload)
        os.replace(
            self._job_path(JobState.RUNNING, job_id),
            self._job_path(JobState.DONE, job_id),
        )

    def note_shards(self, job_id: str, done: int, total: int) -> None:
        """Record intra-run shard progress on a running job (best effort).

        Time-sharded jobs settle only once every shard folds, which can
        be minutes into a long run; this stamps ``shards_done`` /
        ``shards_total`` onto the running job document so pollers
        (``repro submit --watch``, ``BatchHandle.job_status``) can show
        progress inside a single job.  Racing against the job settling
        (running → done) is harmless, so lost updates are ignored.
        """
        path = self._job_path(JobState.RUNNING, job_id)
        try:
            doc = json.loads(path.read_text())
            doc["shards_done"] = done
            doc["shards_total"] = total
            _atomic_write_json(path, doc)
        except (OSError, ValueError):
            pass

    def retry(self, job_id: str, doc: Dict[str, object]) -> None:
        """Requeue a failed attempt: rewrite the doc, running → pending."""
        _atomic_write_json(self._job_path(JobState.PENDING, job_id), doc)
        try:
            self._job_path(JobState.RUNNING, job_id).unlink()
        except FileNotFoundError:
            pass

    def fail(self, job_id: str, doc: Dict[str, object]) -> None:
        """Retry budget exhausted: record the error, running → failed."""
        _atomic_write_json(self._job_path(JobState.FAILED, job_id), doc)
        try:
            self._job_path(JobState.RUNNING, job_id).unlink()
        except FileNotFoundError:
            pass

    def recover(self) -> List[str]:
        """Requeue every ``running`` job (service restart after a crash).

        A job can only be in ``running`` across a restart if its worker
        died mid-run; finished jobs already moved to ``done``/``failed``
        atomically, so none of those is ever re-queued.
        """
        recovered = []
        for job_id in self.jobs(JobState.RUNNING):
            src = self._job_path(JobState.RUNNING, job_id)
            dst = self._job_path(JobState.PENDING, job_id)
            if dst.exists():  # torn retry(): pending copy already written
                src.unlink()
            else:
                os.replace(src, dst)
            recovered.append(job_id)
        return recovered

    def result_payload(self, job_id: str) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self._result_path(job_id).read_text())
        except (OSError, ValueError):
            return None

    def counts(self) -> Dict[str, int]:
        return {state.value: len(self.jobs(state)) for state in JobState}

    # -- batches -----------------------------------------------------------

    def create_batch(
        self, job_ids: List[str], batch_id: Optional[str] = None
    ) -> str:
        batch_id = batch_id or uuid.uuid4().hex[:12]
        self.ensure()
        _atomic_write_json(
            self._batch_path(batch_id),
            {"id": batch_id, "jobs": list(job_ids)},
        )
        return batch_id

    def batch_jobs(self, batch_id: str) -> List[str]:
        """The ordered job-id list of one batch (KeyError if unknown)."""
        try:
            manifest = json.loads(self._batch_path(batch_id).read_text())
        except OSError:
            raise KeyError(f"unknown batch {batch_id!r}") from None
        return list(manifest["jobs"])

    def batch_ids(self) -> List[str]:
        directory = self.root / "batches"
        if not directory.is_dir():
            return []
        return sorted(
            path.stem for path in directory.glob("*.json")
            if not path.name.startswith(".")
        )

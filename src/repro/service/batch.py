"""Batch handles: poll / stream / await over one submitted batch.

A :class:`BatchHandle` is what :func:`~repro.service.scheduler.execute_batch`
returns.  It keeps the submit-order view of the batch (per-request
status, results aligned to the requests that produced them) while the
scheduler settles jobs in completion order underneath.
"""

from __future__ import annotations

import dataclasses
import queue
import shutil
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from ..harness.api import RunResult
from ..obs.snapshot import MetricsSnapshot
from .spool import JobState


class BatchError(RuntimeError):
    """At least one request in the batch exhausted its retry budget.

    ``failures`` maps job id → error string; the partial results are
    still available via ``wait(raise_on_error=False)``.
    """

    def __init__(self, failures: Dict[str, str]) -> None:
        self.failures = dict(failures)
        summary = "; ".join(
            f"{job_id[:12]}: {error}"
            for job_id, error in sorted(self.failures.items())
        )
        super().__init__(
            f"{len(self.failures)} job(s) failed after retries: {summary}"
        )


@dataclasses.dataclass(frozen=True)
class JobStatus:
    """Point-in-time view of one request in a batch."""

    index: int
    job_id: str
    state: Optional[JobState]
    attempts: int = 0
    error: Optional[str] = None


#: Sentinel closing the stream queue.
_END = object()


class BatchHandle:
    """One submitted batch: await, stream, or poll its jobs.

    Construction happens inside ``SweepService.submit``; user code gets
    handles from :func:`~repro.service.scheduler.execute_batch` (or
    ``service.submit`` when driving a shared spool directly).
    """

    def __init__(
        self,
        service,
        batch_id: str,
        job_ids: List[str],
        requests: Optional[List] = None,
        deduped: int = 0,
    ) -> None:
        self._service = service
        self.batch_id = batch_id
        self.job_ids = list(job_ids)
        self.requests = list(requests) if requests is not None else None
        #: Requests whose job already existed at submission time.
        self.deduped = deduped
        self._results: Dict[str, Optional[RunResult]] = {}
        self._errors: Dict[str, str] = {}
        self._processed = False
        self._thread: Optional[threading.Thread] = None
        self._queue: Optional[queue.SimpleQueue] = None
        self._user_hook = None
        self._parallel: Optional[bool] = None
        self._max_workers: Optional[int] = None
        self._ephemeral = False
        self._lock = threading.Lock()

    @property
    def spool(self):
        return self._service.spool

    # -- configuration (used by execute_batch) -----------------------------

    def configure(
        self,
        *,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
        on_result=None,
        ephemeral: bool = False,
    ) -> "BatchHandle":
        self._parallel = parallel
        self._max_workers = max_workers
        self._user_hook = on_result
        self._ephemeral = ephemeral
        return self

    # -- processing --------------------------------------------------------

    def _indices_of(self, job_id: str) -> List[int]:
        return [
            index for index, jid in enumerate(self.job_ids) if jid == job_id
        ]

    def _record(self, job_id: str, result, error) -> None:
        self._results[job_id] = result
        if error is not None:
            self._errors[job_id] = error
        if self._queue is not None:
            for index in self._indices_of(job_id):
                self._queue.put((index, result, error))
        if self._user_hook is not None:
            for index in self._indices_of(job_id):
                self._user_hook(index, result, error)

    def _process(self) -> None:
        try:
            self._service.process(
                self.job_ids,
                parallel=self._parallel,
                max_workers=self._max_workers,
                on_result=self._record,
            )
        finally:
            self._processed = True
            if self._queue is not None:
                self._queue.put(_END)

    def _ensure_processed(self) -> None:
        with self._lock:
            if self._thread is None and not self._processed:
                self._process()

    def start_background(self) -> "BatchHandle":
        """Begin processing on a daemon thread (``background=True``)."""
        with self._lock:
            if self._thread is None and not self._processed:
                self._queue = queue.SimpleQueue()
                self._thread = threading.Thread(
                    target=self._process, name=f"batch-{self.batch_id}",
                    daemon=True,
                )
                self._thread.start()
        return self

    # -- await -------------------------------------------------------------

    def wait(
        self, *, raise_on_error: bool = True
    ) -> List[Optional[RunResult]]:
        """Block until every job settles; results in submit order.

        Failed requests raise :class:`BatchError` by default; with
        ``raise_on_error=False`` they come back as None (partial-
        failure semantics — callers pair results with their requests
        by index).
        """
        if self._thread is not None:
            self._thread.join()
        else:
            self._ensure_processed()
        self._cleanup_ephemeral()
        if raise_on_error and self._errors:
            raise BatchError(self._errors)
        return [self._results.get(job_id) for job_id in self.job_ids]

    def results(self) -> List[Optional[RunResult]]:
        """Alias for ``wait(raise_on_error=False)``."""
        return self.wait(raise_on_error=False)

    # -- stream ------------------------------------------------------------

    def stream(self) -> Iterator[Tuple[int, Optional[RunResult],
                                       Optional[str]]]:
        """Yield ``(index, result, error)`` as each job completes.

        Starts background processing if nothing is running yet; the
        iterator finishes when every request has been reported once.
        """
        if self._processed:  # already settled: replay in submit order
            for index, job_id in enumerate(self.job_ids):
                yield (index, self._results.get(job_id),
                       self._errors.get(job_id))
            return
        if self._thread is None:
            self.start_background()
        assert self._queue is not None
        while True:
            item = self._queue.get()
            if item is _END:
                break
            yield item
        self._cleanup_ephemeral()

    # -- poll --------------------------------------------------------------

    def job_status(self, index: int) -> JobStatus:
        job_id = self.job_ids[index]
        doc = self.spool.job_doc(job_id) or {}
        return JobStatus(
            index=index,
            job_id=job_id,
            state=self.spool.state_of(job_id),
            attempts=int(doc.get("attempts", 0)),
            error=doc.get("error") or self._errors.get(job_id),
        )

    def status(self) -> Dict[str, object]:
        """Per-state counts over the batch's requests (poll surface)."""
        counts = {state.value: 0 for state in JobState}
        unknown = 0
        for job_id in self.job_ids:
            state = self.spool.state_of(job_id)
            if state is None:
                unknown += 1
            else:
                counts[state.value] += 1
        return {
            "batch": self.batch_id,
            "total": len(self.job_ids),
            "deduped": self.deduped,
            "unknown": unknown,
            **counts,
        }

    def done(self) -> bool:
        """True once no request is still pending or running."""
        status = self.status()
        return status["pending"] == 0 and status["running"] == 0

    # -- aggregation -------------------------------------------------------

    def merged_metrics(self) -> MetricsSnapshot:
        """Associative merge of every finished job's metrics snapshot.

        Jobs merge in sorted-job-id order (and the merge itself is
        order-independent), so the aggregate is byte-identical for any
        completion interleaving — including an interrupted-and-resumed
        batch versus an uninterrupted one.
        """
        merged = MetricsSnapshot.empty()
        for job_id in sorted(set(self.job_ids)):
            result = self._results.get(job_id)
            snapshot = result.metrics if result is not None else None
            if snapshot is None:
                payload = self.spool.result_payload(job_id)
                if payload and payload.get("metrics"):
                    snapshot = MetricsSnapshot.from_dict(payload["metrics"])
            if snapshot is not None:
                merged = merged.merge(snapshot)
        return merged

    # -- ephemeral spool cleanup -------------------------------------------

    def _cleanup_ephemeral(self) -> None:
        if not self._ephemeral or not self._processed:
            return
        self._ephemeral = False
        shutil.rmtree(self.spool.root, ignore_errors=True)

"""Distributed sweep service: durable, deduplicated batch execution.

The paper's evaluation is one large label x policy x config sweep;
this package turns that into a service.  Batches of
:class:`~repro.harness.RunRequest`\\ s land in an on-disk spool
(:class:`SpoolDir`), a scheduler (:class:`SweepService`) shards them
across the persistent worker pool in LPT order, deduplicates against
the content-addressed run cache *before* dispatch, streams results and
mergeable metrics snapshots back as shards finish, and survives worker
death: every job-state transition is an atomic rename, so a restarted
service resumes exactly where the dead one stopped.

Public surface::

    from repro.service import execute_batch

    handle = execute_batch(requests, spool="spool/")   # BatchHandle
    handle.wait()       # await   — results in submit order
    handle.stream()     # stream  — (index, result, error) as they land
    handle.status()     # poll    — per-state counts
    handle.merged_metrics()        # one associative MetricsSnapshot

The same engine backs ``repro submit`` / ``repro serve`` /
``repro status`` on a shared spool directory, and
:func:`repro.harness.execute_many` in local mode.  See
``docs/service.md``.
"""

from ..harness.api import RequestError
from .batch import BatchError, BatchHandle, JobStatus
from .scheduler import (
    SweepService,
    execute_batch,
    lpt_weight,
    result_from_payload,
    result_payload,
    stats_from_dict,
)
from .spool import (
    JobState,
    SpoolDir,
    decode_request,
    default_spool_dir,
    encode_request,
)

__all__ = [
    "BatchError",
    "BatchHandle",
    "JobState",
    "JobStatus",
    "RequestError",
    "SpoolDir",
    "SweepService",
    "decode_request",
    "default_spool_dir",
    "encode_request",
    "execute_batch",
    "lpt_weight",
    "result_from_payload",
    "result_payload",
    "stats_from_dict",
]

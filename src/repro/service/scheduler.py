"""The sweep service: job queue, scheduler, and ``execute_batch``.

:class:`SweepService` composes the three building blocks the ROADMAP
names into one batch engine:

* the **on-disk spool** (:mod:`repro.service.spool`) gives durable,
  atomically-transitioned job state, so a killed worker or restarted
  service resumes without recomputing finished runs;
* the **content-addressed run cache** (:mod:`repro.perf.runcache`)
  dedupes work *before dispatch* — a claimed job whose key is already
  stored completes from the cache without ever reaching a worker;
* the **shared worker pool** (:mod:`repro.perf.pool`) fans dispatched
  jobs across processes with LPT (longest-first) scheduling, streaming
  each result back the moment its shard finishes.

The public entry point is :func:`execute_batch`, which returns a
:class:`~repro.service.batch.BatchHandle` (poll / stream / await).
``sweep_policies``, ``weighted_ipc``'s grid drivers and the
``figN_*``/``tableN_*`` experiments are thin clients of this one
submission path via :func:`repro.harness.execute_many`.
"""

from __future__ import annotations

import tempfile
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..core.config import WrpkruPolicy
from ..core.stats import SimStats
from ..harness.api import (
    RunMetadata,
    RunRequest,
    RunResult,
    execute,
    notify_run_observers,
)
from ..obs.progress import ProgressReporter
from ..obs.snapshot import MetricsSnapshot
from ..perf.envflag import env_flag
from ..perf.pool import run_longest_first
from ..perf.runcache import cache_enabled, default_cache
from ..perf.timeshard import fold_outcomes, prepare_request, shard_weight
from ..workloads.instrument import InstrumentMode
from .batch import BatchHandle
from .spool import JobState, SpoolDir, decode_request

#: Expected serialization overhead per policy, used only to order LPT
#: submission (longest first).  SERIALIZED drains the pipeline around
#: every WRPKRU and SPECMPK adds check/replay stalls, so those grid
#: points take the most wall-clock per instruction.
_POLICY_WEIGHT = {
    WrpkruPolicy.SERIALIZED: 1.3,
    WrpkruPolicy.SPECMPK: 1.2,
    WrpkruPolicy.NONSECURE_SPEC: 1.0,
}


def lpt_weight(request: RunRequest) -> float:
    """Expected relative wall-clock of one request (LPT ordering)."""
    return (
        request.resolved_instructions()
        * _POLICY_WEIGHT.get(request.policy, 1.0)
    )


def _worker(job: Tuple[RunRequest, bool]):
    """Module-level worker so the process pool can pickle it.

    Errors are *captured*, not raised: one faulting grid point must not
    tear down the whole shard, so the scheduler gets ``("err", msg)``
    back and applies the retry budget instead.
    """
    request, cache = job
    try:
        # cache=True means "not disabled": defer to the REPRO_CACHE env
        # default; only an explicit service-level cache=False forces off.
        return ("ok", execute(request, cache=None if cache else False))
    except Exception as error:  # noqa: BLE001 - the job boundary
        return ("err", f"{type(error).__name__}: {error}")


def _dispatch(task: Tuple):
    """One schedulable unit: a whole run or a single time shard.

    The scheduler mixes both in one LPT submission — ``("run",
    request, cache)`` simulates a complete request, ``("shard",
    shard_job)`` measures one window of a time-sharded request
    (:mod:`repro.perf.timeshard`) — so a batch of short whole runs and
    a few long sharded ones packs the pool with no idle tails.
    """
    if task[0] == "run":
        return _worker((task[1], task[2]))
    from ..perf.timeshard import measure_shard

    try:
        return ("ok", measure_shard(task[1]))
    except Exception as error:  # noqa: BLE001 - the shard boundary
        return ("err", f"{type(error).__name__}: {error}")


# -- result payloads --------------------------------------------------------


_DERIVED_STATS = ("ipc", "wrpkru_per_kilo", "rename_stall_fraction")


def stats_from_dict(doc: Dict[str, float]) -> SimStats:
    """Rebuild a scalar :class:`SimStats` from ``SimStats.as_dict()``.

    Derived rates (``ipc`` etc.) are read-only properties recomputed
    from the counters, so they are skipped rather than set.
    """
    stats = SimStats()
    for name, value in doc.items():
        if name in _DERIVED_STATS:
            continue
        setattr(stats, name, value)
    return stats


def result_payload(result: RunResult, cached: bool) -> Dict[str, object]:
    """The JSON document persisted under ``results/`` for a done job."""
    return {
        "stats": result.stats.as_dict(),
        "metadata": result.metadata.as_dict(),
        "metrics": (
            result.metrics.as_dict() if result.metrics is not None else None
        ),
        "cached": cached,
    }


def result_from_payload(payload: Dict[str, object]) -> RunResult:
    """A :class:`RunResult` rebuilt from a persisted payload.

    Scalar-complete: stats counters, metadata and the metrics snapshot
    round-trip exactly; the trace handle (never spooled) is None.
    """
    meta = payload["metadata"]
    metadata = RunMetadata(
        label=meta["label"],
        policy=WrpkruPolicy(meta["policy"]),
        mode=InstrumentMode(meta["mode"]),
        instructions=meta["instructions"],
        warmup=meta["warmup"],
        fastforward=bool(meta.get("fastforward", False)),
    )
    metrics = payload.get("metrics")
    return RunResult(
        stats=stats_from_dict(payload["stats"]),
        metadata=metadata,
        metrics=(
            MetricsSnapshot.from_dict(metrics) if metrics is not None
            else None
        ),
    )


# -- the service ------------------------------------------------------------


#: ``on_result(job_id, result, error)`` — exactly one of result/error
#: is None; fired in completion order from the scheduling thread.
ResultHook = Callable[[str, Optional[RunResult], Optional[str]], None]


class SweepService:
    """Batch scheduler over one spool directory.

    One instance per spool; safe to restart — :meth:`serve` first
    requeues jobs a dead worker left in ``running``.  ``max_retries``
    bounds how often a job is redispatched after a worker error before
    it parks in ``failed``.
    """

    def __init__(
        self,
        spool: Union[str, SpoolDir, None] = None,
        *,
        cache: bool = True,
        max_retries: int = 1,
    ) -> None:
        if spool is None:
            spool = SpoolDir(tempfile.mkdtemp(prefix="repro-spool-"))
        elif not isinstance(spool, SpoolDir):
            spool = SpoolDir(spool)
        self.spool = spool.ensure()
        self.cache = cache
        self.max_retries = max_retries
        #: Dispatch accounting since construction (CLI summary).
        self.counters: Dict[str, int] = {
            "executed": 0,       # simulated in a worker / inline
            "from_cache": 0,     # completed by pre-dispatch cache dedup
            "from_spool": 0,     # already done when the batch arrived
            "retried": 0,
            "failed": 0,
        }

    # -- submission --------------------------------------------------------

    def submit(
        self,
        requests: Iterable[RunRequest],
        batch_id: Optional[str] = None,
    ) -> BatchHandle:
        """Spool a batch of requests and return its handle.

        Requests whose job already exists (any state) are deduplicated
        at submission: the new batch simply references the existing
        job, so two overlapping batches never queue the same work
        twice.
        """
        requests = list(requests)
        job_ids: List[str] = []
        deduped = 0
        for request in requests:
            job_id, _state, created = self.spool.add_job(request)
            job_ids.append(job_id)
            if not created:
                deduped += 1
        batch_id = self.spool.create_batch(job_ids, batch_id)
        return BatchHandle(
            self, batch_id, job_ids, requests, deduped=deduped
        )

    # -- scheduling --------------------------------------------------------

    def process(
        self,
        job_ids: Optional[Iterable[str]] = None,
        *,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
        on_result: Optional[ResultHook] = None,
        progress: Optional[ProgressReporter] = None,
    ) -> Dict[str, Optional[RunResult]]:
        """Drain *job_ids* (default: every pending job) to completion.

        Jobs already ``done`` resolve from their persisted payload
        (resume / cross-batch dedup); pending jobs are claimed, deduped
        against the run cache, and the remainder dispatched — across
        the shared pool in LPT order with *parallel* (default: the
        ``REPRO_PARALLEL`` env flag), else inline.  Worker errors
        consume one retry each until ``max_retries`` is exhausted.

        Returns ``{job_id: RunResult}`` (None for failed jobs);
        *on_result* streams the same outcomes in completion order.
        """
        if parallel is None:
            parallel = env_flag("REPRO_PARALLEL", default=False)
        if job_ids is None:
            job_ids = self.spool.jobs(JobState.PENDING)
        ordered = list(dict.fromkeys(job_ids))
        results: Dict[str, Optional[RunResult]] = {}

        def settle(job_id: str, result: Optional[RunResult],
                   error: Optional[str]) -> None:
            results[job_id] = result
            if result is not None:
                # Report observers see every settled outcome, including
                # the paths that never call execute() in this process
                # (pre-dispatch cache dedup, spool resume, parallel
                # workers).  The job id is the run-cache key, and
                # observers dedupe on it, so results that *did* flow
                # through an in-process execute() are not double-counted.
                notify_run_observers(job_id, result)
            if on_result is not None:
                on_result(job_id, result, error)
            if progress is not None:
                progress.advance(job_id[:12])

        # Phase 0: jobs a previous batch / service run already settled.
        for job_id in ordered:
            state = self.spool.state_of(job_id)
            if state is JobState.DONE:
                payload = self.spool.result_payload(job_id)
                if payload is None:  # pragma: no cover - corrupt spool
                    settle(job_id, None, "done job has no result payload")
                    continue
                self.counters["from_spool"] += 1
                settle(job_id, result_from_payload(payload), None)
            elif state is JobState.FAILED:
                doc = self.spool.job_doc(job_id) or {}
                settle(job_id, None, doc.get("error") or "failed")

        # Claim/dispatch rounds: retried jobs reappear as pending and
        # are picked up by the next round until the budget runs out.
        while True:
            claimed: List[Tuple[str, Dict[str, object], RunRequest]] = []
            for job_id in ordered:
                if job_id in results:
                    continue
                doc = self.spool.claim(job_id)
                if doc is None:
                    continue  # lost the claim race (another worker)
                request = decode_request(doc["request"])
                # Pre-dispatch dedup: the job id is the run-cache key,
                # so a stored result completes the job with no worker.
                if self.cache and cache_enabled():
                    key = request.cache_key()
                    cached = (
                        default_cache().peek(key) if key is not None else None
                    )
                    if cached is not None:
                        self.counters["from_cache"] += 1
                        self.spool.complete(
                            job_id, result_payload(cached, cached=True)
                        )
                        settle(job_id, cached, None)
                        continue
                claimed.append((job_id, doc, request))
            if not claimed:
                break

            def settle_claim(claim_index: int, outcome) -> None:
                job_id, doc, request = claimed[claim_index]
                status, value = outcome
                if status == "ok":
                    self.counters["executed"] += 1
                    self.spool.complete(
                        job_id, result_payload(value, cached=False)
                    )
                    settle(job_id, value, None)
                    return
                doc = dict(doc)
                doc["attempts"] = int(doc.get("attempts", 0)) + 1
                doc["error"] = value
                if doc["attempts"] > self.max_retries:
                    self.counters["failed"] += 1
                    self.spool.fail(job_id, doc)
                    settle(job_id, None, value)
                else:
                    self.counters["retried"] += 1
                    self.spool.retry(job_id, doc)

            # One mixed dispatch list: whole runs and the individual
            # time shards of sharded requests are peer tasks in a
            # single LPT submission, so long sharded jobs interleave
            # with short whole runs instead of serializing behind them.
            tasks: List[Tuple] = []
            weights: List[float] = []
            slots: List[Tuple[int, Optional[int]]] = []
            shard_ctx: Dict[int, Dict[str, object]] = {}
            for claim_index, (job_id, doc, request) in enumerate(claimed):
                if request.resolved_time_shards() > 1:
                    try:
                        shard_jobs, metadata, shards = (
                            prepare_request(request)
                        )
                    except Exception as error:  # noqa: BLE001
                        settle_claim(claim_index, (
                            "err", f"{type(error).__name__}: {error}"
                        ))
                        continue
                    if not shard_jobs:
                        settle_claim(claim_index, (
                            "err", "no shard window is reachable"
                        ))
                        continue
                    shard_ctx[claim_index] = {
                        "metadata": metadata, "shards": shards,
                        "outcomes": [], "error": None,
                        "pending": len(shard_jobs), "total": len(shard_jobs),
                    }
                    policy_weight = _POLICY_WEIGHT.get(request.policy, 1.0)
                    for shard_job in shard_jobs:
                        tasks.append(("shard", shard_job))
                        weights.append(
                            shard_weight(shard_job) * policy_weight
                        )
                        slots.append((claim_index, shard_job.window.index))
                else:
                    tasks.append(("run", request, self.cache))
                    weights.append(lpt_weight(request))
                    slots.append((claim_index, None))

            def finish(slot: int, outcome) -> None:
                claim_index, shard_index = slots[slot]
                if shard_index is None:
                    settle_claim(claim_index, outcome)
                    return
                job_id, _doc, request = claimed[claim_index]
                ctx = shard_ctx[claim_index]
                status, value = outcome
                if status == "ok":
                    ctx["outcomes"].append(value)
                elif ctx["error"] is None:
                    # First shard error wins; the job retries whole (a
                    # shard has no durable identity of its own).
                    ctx["error"] = f"shard {shard_index}: {value}"
                ctx["pending"] -= 1
                done = ctx["total"] - ctx["pending"]
                self.spool.note_shards(job_id, done, ctx["total"])
                if progress is not None:
                    progress.heartbeat(
                        f"{job_id[:12]} shard {done}/{ctx['total']}"
                    )
                if ctx["pending"]:
                    return
                if ctx["error"] is not None:
                    settle_claim(claim_index, ("err", ctx["error"]))
                    return
                try:
                    stats, metrics = fold_outcomes(
                        ctx["outcomes"], ctx["shards"]
                    )
                    result = RunResult(
                        stats=stats, metadata=ctx["metadata"],
                        metrics=metrics,
                    )
                except Exception as error:  # noqa: BLE001
                    settle_claim(claim_index, (
                        "err", f"{type(error).__name__}: {error}"
                    ))
                    return
                # Memoize like execute() would have, so resubmission
                # and cross-batch dedup see the folded result.
                if self.cache and cache_enabled():
                    key = request.cache_key()
                    if key is not None:
                        default_cache().put(key, result)
                settle_claim(claim_index, ("ok", result))

            if parallel and len(tasks) > 1:
                run_longest_first(
                    _dispatch, tasks, weights=weights,
                    max_workers=max_workers, on_result=finish,
                )
            else:
                for slot, task in enumerate(tasks):
                    finish(slot, _dispatch(task))
        return results

    def serve(
        self,
        *,
        once: bool = True,
        poll_interval: float = 1.0,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
        on_result: Optional[ResultHook] = None,
        progress: Optional[ProgressReporter] = None,
        max_iterations: Optional[int] = None,
    ) -> Dict[str, Optional[RunResult]]:
        """Recover interrupted jobs, then drain the whole spool.

        With ``once`` (the default, and ``repro serve --once``) one
        drain pass runs and returns; otherwise the service polls the
        spool for newly submitted jobs every *poll_interval* seconds
        until interrupted (or *max_iterations* passes, for tests).
        """
        self.spool.recover()
        settled: Dict[str, Optional[RunResult]] = {}
        iterations = 0
        while True:
            settled.update(self.process(
                parallel=parallel, max_workers=max_workers,
                on_result=on_result, progress=progress,
            ))
            iterations += 1
            if once:
                return settled
            if max_iterations is not None and iterations >= max_iterations:
                return settled
            time.sleep(poll_interval)


# -- the front door ---------------------------------------------------------


def execute_batch(
    requests: Iterable[RunRequest],
    *,
    spool: Union[str, SpoolDir, None] = None,
    cache: bool = True,
    parallel: Optional[bool] = None,
    max_workers: Optional[int] = None,
    max_retries: int = 1,
    batch_id: Optional[str] = None,
    on_result: Optional[Callable] = None,
    background: bool = False,
) -> BatchHandle:
    """Submit *requests* as one batch; returns its :class:`BatchHandle`.

    The redesigned batch API: every multi-run driver funnels through
    this single submission path.  With *spool* the batch is durable —
    a second submission of the same requests (or a restart after a
    crash) reuses finished jobs instead of recomputing them; without
    it, an ephemeral spool backs the batch and is removed once the
    handle completes (run-cache dedup still applies across batches).

    The handle supports all three consumption styles::

        handle = execute_batch(reqs)
        handle.wait()              # await: results in submit order
        for i, r, err in handle.stream():   # stream: completion order
            ...
        handle.status()            # poll: per-state counts

    *background* starts processing on a daemon thread immediately, so
    ``status()`` advances while the caller does other work; by default
    processing runs inline on the first ``wait()``/``stream()`` call.
    Worker failures consume *max_retries* redispatches per job before
    the job parks as failed; ``wait(raise_on_error=False)`` opts into
    partial results (None per failed request) instead of the default
    :class:`~repro.service.batch.BatchError`.
    """
    ephemeral = spool is None
    service = SweepService(spool, cache=cache, max_retries=max_retries)
    handle = service.submit(list(requests), batch_id=batch_id)
    handle.configure(
        parallel=parallel, max_workers=max_workers, on_result=on_result,
        ephemeral=ephemeral,
    )
    if background:
        handle.start_background()
    return handle

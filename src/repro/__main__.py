"""Command-line driver: ``python -m repro <command>``.

Commands:

* ``info`` — version, Table III configuration, workload list.
* ``run`` — simulate one workload under one (or every) WRPKRU policy.
* ``trace`` — traced run: top-down CPI report, Chrome trace JSON,
  Konata-style pipeline view.
* ``attack`` — run a transient-execution PoC across policies.
* ``reproduce`` — regenerate paper tables/figures into a directory.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpecMPK reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show configuration and workloads")

    run_parser = sub.add_parser("run", help="simulate one workload")
    run_parser.add_argument("label", help='e.g. "520.omnetpp_r (SS)"')
    run_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk",
                             "all"],
        default="all",
    )
    run_parser.add_argument("--instructions", type=int, default=None)
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable statistics instead of the report",
    )

    trace_parser = sub.add_parser(
        "trace", help="traced run: top-down report + pipeline traces"
    )
    trace_parser.add_argument("label", help='e.g. "520.omnetpp_r (SS)"')
    trace_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk"],
        default="specmpk",
    )
    trace_parser.add_argument("--instructions", type=int, default=None)
    trace_parser.add_argument("--warmup", type=int, default=None)
    trace_parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("results"),
        help="directory for the exported trace files",
    )
    trace_parser.add_argument(
        "--format", choices=["chrome", "konata", "topdown", "all"],
        default="all",
        help="which artifacts to produce (default: all)",
    )
    trace_parser.add_argument(
        "--capacity", type=int, default=1 << 16,
        help="event/cycle ring-buffer capacity",
    )
    trace_parser.add_argument(
        "--last", type=int, default=32,
        help="instructions shown in the Konata-style text view",
    )

    attack_parser = sub.add_parser("attack", help="run a PoC attack")
    attack_parser.add_argument(
        "name", choices=["v1", "bti", "overflow", "chosen"],
    )

    compile_parser = sub.add_parser(
        "compile", help="compile a MiniC file and run it"
    )
    compile_parser.add_argument("path", type=pathlib.Path)
    compile_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk",
                             "all"],
        default="specmpk",
    )
    compile_parser.add_argument("--shadow-stack", action="store_true")
    compile_parser.add_argument(
        "--no-secure-arrays", action="store_true",
        help="ignore `secure` declarations (unprotected baseline build)",
    )
    compile_parser.add_argument(
        "--emit-asm", action="store_true",
        help="print the generated assembly listing and exit",
    )

    repro_parser = sub.add_parser(
        "reproduce", help="regenerate paper tables/figures"
    )
    repro_parser.add_argument(
        "--experiments",
        default="all",
        help="comma-separated subset: fig3,fig4,fig9,fig10,fig11,fig13,"
             "table1,table2,table3,hw,mprotect (default: all)",
    )
    repro_parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("results"),
    )

    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_info() -> int:
    import repro
    from repro.harness import render_table, table3_configuration
    from repro.workloads import ALL_PROFILES

    print(f"SpecMPK reproduction v{repro.__version__}")
    print()
    print(render_table(table3_configuration(), title="Core configuration"))
    print()
    print("Workloads:")
    for profile in ALL_PROFILES:
        print(f"  {profile.label:26s} ({profile.suite}, "
              f"{profile.working_set_kib} KiB working set)")
    return 0


def _cmd_run(args) -> int:
    import json

    from repro.core import WrpkruPolicy
    from repro.harness import run_workload

    policies = (
        list(WrpkruPolicy)
        if args.policy == "all"
        else [WrpkruPolicy(args.policy)]
    )
    baseline = None
    json_out = {}
    for policy in policies:
        stats = run_workload(args.label, policy,
                             instructions=args.instructions)
        if baseline is None:
            baseline = stats.ipc
        if args.json:
            json_out[policy.value] = stats.as_dict()
            continue
        print(f"=== {args.label} under {policy.value} ===")
        print(stats.report())
        if policy is not policies[0]:
            print(f"normalized IPC vs {policies[0].value}: "
                  f"{stats.ipc / baseline:.3f}")
        print()
    if args.json:
        print(json.dumps({"workload": args.label, "runs": json_out},
                         indent=2))
    return 0


def _cmd_trace(args) -> int:
    from repro.core import WrpkruPolicy
    from repro.harness import RunRequest, TraceOptions, execute
    from repro.trace import export_chrome_trace, render_pipeline_text

    result = execute(RunRequest(
        workload=args.label,
        policy=WrpkruPolicy(args.policy),
        instructions=args.instructions,
        warmup=args.warmup,
        trace=TraceOptions(
            enabled=True,
            capacity=args.capacity,
            cycle_capacity=args.capacity,
        ),
    ))
    wants = (
        {"chrome", "konata", "topdown"}
        if args.format == "all" else {args.format}
    )
    print(f"=== {args.label} under {args.policy} "
          f"({result.metadata.instructions} measured instructions) ===")
    if "topdown" in wants:
        print()
        print(result.topdown().report())
    args.out.mkdir(parents=True, exist_ok=True)
    stem = args.label.replace(" ", "_").replace("(", "").replace(")", "")
    if "chrome" in wants:
        path = args.out / f"{stem}.{args.policy}.trace.json"
        export_chrome_trace(result.trace, path)
        print(f"\nChrome trace written to {path}"
              "\n  (load in chrome://tracing or https://ui.perfetto.dev)")
    if "konata" in wants:
        path = args.out / f"{stem}.{args.policy}.pipeline.txt"
        text = render_pipeline_text(result.trace, last=args.last)
        path.write_text(text + "\n")
        print(f"\nPipeline view ({args.last} most recent instructions):")
        print(text)
        print(f"\nwritten to {path}")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import (
        build_chosen_code_poc,
        build_spectre_bti_poc,
        build_spectre_v1_poc,
        build_speculative_overflow_poc,
        run_attack,
    )
    from repro.core import WrpkruPolicy

    builders = {
        "v1": (build_spectre_v1_poc, False),
        "bti": (build_spectre_bti_poc, False),
        "overflow": (build_speculative_overflow_poc, False),
        "chosen": (build_chosen_code_poc, True),
    }
    builder, expect_fault = builders[args.name]
    attack = builder()
    leaked_anywhere = False
    for policy in WrpkruPolicy:
        result = run_attack(attack, policy, expect_fault=expect_fault)
        verdict = "LEAKED" if result.leaked else "mitigated"
        leaked_anywhere |= result.leaked
        print(f"{policy.value:15s}: {verdict} "
              f"(hot probe values: {result.hot_values or '-'})")
    return 0 if leaked_anywhere else 1  # v1 must leak somewhere


def _cmd_compile(args) -> int:
    from repro.core import CoreConfig, Simulator, WrpkruPolicy
    from repro.lang import CompileOptions, compile_module

    source = args.path.read_text()
    options = CompileOptions(
        shadow_stack=args.shadow_stack,
        protect_secure_arrays=not args.no_secure_arrays,
    )
    compiled = compile_module(source, options)
    wrpkrus = sum(
        1 for inst in compiled.program.instructions if inst.is_wrpkru
    )
    print(f"compiled {args.path}: {len(compiled.program)} instructions, "
          f"{wrpkrus} WRPKRU sites")
    if args.emit_asm:
        print(compiled.program.listing())
        return 0
    policies = (
        list(WrpkruPolicy)
        if args.policy == "all"
        else [WrpkruPolicy(args.policy)]
    )
    for policy in policies:
        sim = Simulator(
            compiled.program, CoreConfig(wrpkru_policy=policy),
            initial_pkru=compiled.initial_pkru,
        )
        sim.prewarm_tlb()
        result = sim.run(max_cycles=10_000_000)
        if result.fault is not None:
            print(f"{policy.value}: FAULT: {result.fault}")
            return 1
        value = sim.prf.read(
            sim.rename_tables.amt[compiled.result_register()]
        )
        print(f"{policy.value:15s}: main() = {value} "
              f"({sim.stats.cycles} cycles, IPC {sim.stats.ipc:.2f})")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.harness import (
        fig3_serialization_study,
        fig4_overhead_breakdown,
        fig9_normalized_ipc,
        fig10_wrpkru_frequency,
        fig11_rob_pkru_sensitivity,
        fig13_flush_reload,
        motivation_mprotect_vs_mpk,
        render_bars,
        render_latency_series,
        render_table,
        section8_hardware_overhead,
        table1_isolation_properties,
        table2_source_operands,
        table3_configuration,
    )

    out: pathlib.Path = args.out
    out.mkdir(parents=True, exist_ok=True)
    wanted = (
        None if args.experiments == "all"
        else set(args.experiments.split(","))
    )

    def selected(name: str) -> bool:
        return wanted is None or name in wanted

    def save(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"[{name}] written to {out / (name + '.txt')}")

    if selected("table1"):
        data = table1_isolation_properties()
        save("table1", render_table(data["rows"], title="Table I"))
    if selected("table2"):
        save("table2", render_table(table2_source_operands(),
                                    title="Table II"))
    if selected("table3"):
        save("table3", render_table(table3_configuration(),
                                    title="Table III"))
    if selected("hw"):
        data = section8_hardware_overhead()
        save("hw_overhead",
             f"total: {data['total_bytes']:.1f} B "
             f"({data['l1d_fraction']:.2%} of L1D)")
    if selected("fig13"):
        data = fig13_flush_reload()
        save("fig13", render_latency_series(
            data["nonsecure_latencies"], title="NonSecure:")
            + "\n" + render_latency_series(
                data["specmpk_latencies"], title="SpecMPK:"))
    if selected("fig3"):
        rows = fig3_serialization_study()
        save("fig3", render_table(rows, title="Fig. 3"))
    if selected("fig4"):
        rows = fig4_overhead_breakdown()
        save("fig4", render_table(rows, title="Fig. 4"))
    if selected("fig9"):
        rows = fig9_normalized_ipc()
        save("fig9", render_table(rows, title="Fig. 9"))
    if selected("fig10"):
        rows = fig10_wrpkru_frequency()
        save("fig10", render_bars(
            [(r["workload"], r["wrpkru_per_kilo"]) for r in rows],
            title="Fig. 10"))
    if selected("fig11"):
        rows = fig11_rob_pkru_sensitivity()
        save("fig11", render_table(rows, title="Fig. 11"))
    if selected("mprotect"):
        rows = motivation_mprotect_vs_mpk()
        save("mprotect", render_table(rows, title="mprotect vs MPK"))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line driver: ``python -m repro <command>``.

Commands:

* ``info`` — version, Table III configuration, workload list.
* ``run`` — simulate one workload under one (or every) WRPKRU policy.
* ``trace`` — traced run: top-down CPI report, Chrome trace JSON,
  Konata-style pipeline view.
* ``attack`` — run a transient-execution PoC across policies.
* ``checkpoint`` — functionally fast-forward a workload and write a
  picklable resume point (optionally resume the timing core from it).
* ``simpoint`` — SimPoint flow: profile BBVs, cluster, checkpoint the
  representatives, report the weighted IPC per policy.
* ``metrics`` — telemetry snapshots: dump one run's metrics (JSON or
  Prometheus text), diff two saved snapshots, or list the top counters.
* ``submit`` / ``serve`` / ``status`` — the sweep service: queue a
  label x policy batch into an on-disk spool, drain it (resuming after
  crashes, deduplicating against the run cache), and inspect batch
  progress or export per-job metrics JSONL.
* ``bench`` — simulator throughput: ``bench kernel`` measures cycle-
  kernel KIPS on the calibrated profiles, optionally comparing the
  staged timing engine against the legacy single-step engine
  (``--compare``) and gating against a checked-in baseline
  (``--baseline``).
* ``reproduce`` — regenerate paper tables/figures into a directory.
* ``report`` — the results-observability pipeline: ``report all``
  regenerates every final artifact with seed-varied repeats and
  bootstrap confidence intervals, writing the provenance ledger
  (``manifest.json``/``manifest.md`` + ``metrics.jsonl``); ``report
  diff`` verifies a regenerated manifest against the checked-in
  baseline with per-metric tolerances (the CI smoke tier).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SpecMPK reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show configuration and workloads")

    run_parser = sub.add_parser("run", help="simulate one workload")
    run_parser.add_argument("label", help='e.g. "520.omnetpp_r (SS)"')
    run_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk",
                             "all"],
        default="all",
    )
    run_parser.add_argument("--instructions", type=int, default=None)
    run_parser.add_argument(
        "--fastforward", action="store_true",
        help="run the warmup window on the functional emulator",
    )
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable statistics instead of the report",
    )

    trace_parser = sub.add_parser(
        "trace", help="traced run: top-down report + pipeline traces"
    )
    trace_parser.add_argument("label", help='e.g. "520.omnetpp_r (SS)"')
    trace_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk"],
        default="specmpk",
    )
    trace_parser.add_argument("--instructions", type=int, default=None)
    trace_parser.add_argument("--warmup", type=int, default=None)
    trace_parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("results"),
        help="directory for the exported trace files",
    )
    trace_parser.add_argument(
        "--format", choices=["chrome", "konata", "topdown", "all"],
        default="all",
        help="which artifacts to produce (default: all)",
    )
    trace_parser.add_argument(
        "--capacity", type=int, default=1 << 16,
        help="event/cycle ring-buffer capacity",
    )
    trace_parser.add_argument(
        "--last", type=int, default=32,
        help="instructions shown in the Konata-style text view",
    )

    attack_parser = sub.add_parser("attack", help="run a PoC attack")
    attack_parser.add_argument(
        "name", choices=["v1", "bti", "overflow", "chosen"],
    )

    compile_parser = sub.add_parser(
        "compile", help="compile a MiniC file and run it"
    )
    compile_parser.add_argument("path", type=pathlib.Path)
    compile_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk",
                             "all"],
        default="specmpk",
    )
    compile_parser.add_argument("--shadow-stack", action="store_true")
    compile_parser.add_argument(
        "--no-secure-arrays", action="store_true",
        help="ignore `secure` declarations (unprotected baseline build)",
    )
    compile_parser.add_argument(
        "--emit-asm", action="store_true",
        help="print the generated assembly listing and exit",
    )

    ckpt_parser = sub.add_parser(
        "checkpoint", help="fast-forward a workload to a checkpoint file"
    )
    ckpt_parser.add_argument("label", help='e.g. "520.omnetpp_r (SS)"')
    ckpt_parser.add_argument(
        "--at", type=int, default=50_000,
        help="instructions to fast-forward before checkpointing",
    )
    ckpt_parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="checkpoint file (default: results/<label>.ckpt)",
    )
    ckpt_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk"],
        default="specmpk", help="core policy used with --measure",
    )
    ckpt_parser.add_argument(
        "--measure", type=int, default=0,
        help="resume the timing core from the written checkpoint and "
             "measure this many instructions",
    )

    simpoint_parser = sub.add_parser(
        "simpoint",
        help="SimPoint flow: profile, cluster, measure weighted IPC",
    )
    simpoint_parser.add_argument("label", help='e.g. "520.omnetpp_r (SS)"')
    simpoint_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk",
                             "all"],
        default="all",
    )
    simpoint_parser.add_argument("--interval-length", type=int,
                                 default=10_000)
    simpoint_parser.add_argument("--profile-instructions", type=int,
                                 default=200_000)
    simpoint_parser.add_argument("--top-n", type=int, default=5)
    simpoint_parser.add_argument(
        "--no-fastforward", action="store_true",
        help="timing-simulate every interval prefix (slow accuracy "
             "reference) instead of resuming from checkpoints",
    )
    simpoint_parser.add_argument(
        "--parallel", action="store_true",
        help="measure the intervals in parallel worker processes",
    )
    simpoint_parser.add_argument("--json", action="store_true")

    metrics_parser = sub.add_parser(
        "metrics", help="dump, diff or query telemetry snapshots"
    )
    metrics_sub = metrics_parser.add_subparsers(
        dest="metrics_command", required=True
    )
    mdump = metrics_sub.add_parser(
        "dump", help="run one workload and emit its metrics snapshot"
    )
    mdump.add_argument("label", help='e.g. "520.omnetpp_r (SS)"')
    mdump.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk"],
        default="specmpk",
    )
    mdump.add_argument("--instructions", type=int, default=None)
    mdump.add_argument(
        "--format", choices=["json", "prom"], default="json",
        help="JSON snapshot or Prometheus text exposition",
    )
    mdump.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write to this file instead of stdout",
    )
    mdiff = metrics_sub.add_parser(
        "diff", help="compare two saved snapshots (JSON or JSONL files)"
    )
    mdiff.add_argument("snapshot_a", type=pathlib.Path)
    mdiff.add_argument("snapshot_b", type=pathlib.Path)
    mdiff.add_argument("-n", "--top", type=int, default=15,
                       help="movers shown (by absolute change)")
    mtop = metrics_sub.add_parser(
        "top", help="largest counters in a saved snapshot"
    )
    mtop.add_argument("snapshot", type=pathlib.Path)
    mtop.add_argument("-n", "--top", type=int, default=15)
    mtop.add_argument("--prefix", default=None,
                      help='dotted subsystem filter, e.g. "mpk"')

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the on-disk run cache"
    )
    cache_parser.add_argument(
        "action", choices=["stats", "clear"],
        help="stats: entry count/size/location; clear: delete entries",
    )
    cache_parser.add_argument("--json", action="store_true")

    submit_parser = sub.add_parser(
        "submit", help="queue a batch of runs in the sweep spool"
    )
    submit_parser.add_argument(
        "labels", nargs="*", help='workload labels, e.g. "520.omnetpp_r (SS)"'
    )
    submit_parser.add_argument(
        "--all-labels", action="store_true",
        help="sweep every known workload profile",
    )
    submit_parser.add_argument(
        "--policy", choices=["serialized", "nonsecure_spec", "specmpk",
                             "all"],
        default="all",
    )
    submit_parser.add_argument(
        "--mode", choices=["none", "protected", "protected_nop"],
        default="protected",
    )
    submit_parser.add_argument("--instructions", type=int, default=None)
    submit_parser.add_argument("--warmup", type=int, default=None)
    submit_parser.add_argument("--fastforward", action="store_true")
    submit_parser.add_argument(
        "--time-shards", type=int, default=None,
        help="split each detailed run into this many checkpoint-sharded "
             "windows over the worker pool (default: REPRO_TIME_SHARDS)",
    )
    submit_parser.add_argument(
        "--shard-warmup", type=int, default=None,
        help="stats-excluded detailed warmup replayed before each shard "
             "window (default: the timeshard module default)",
    )
    submit_parser.add_argument(
        "--spool", type=pathlib.Path, default=None,
        help="spool directory (default: REPRO_SPOOL_DIR or the XDG cache)",
    )
    submit_parser.add_argument("--batch-id", default=None)
    submit_parser.add_argument(
        "--watch", action="store_true",
        help="poll the spool until the batch settles, showing per-job "
             "state and intra-run shard progress (drain it with a "
             "concurrent `repro serve`)",
    )
    submit_parser.add_argument(
        "--poll-interval", type=float, default=1.0,
        help="seconds between --watch polls",
    )
    submit_parser.add_argument("--json", action="store_true")

    serve_parser = sub.add_parser(
        "serve", help="drain the sweep spool (resumes after crashes)"
    )
    serve_parser.add_argument(
        "--spool", type=pathlib.Path, default=None,
        help="spool directory (default: REPRO_SPOOL_DIR or the XDG cache)",
    )
    serve_parser.add_argument(
        "--watch", action="store_true",
        help="keep polling for new jobs instead of one drain pass",
    )
    serve_parser.add_argument("--poll-interval", type=float, default=1.0)
    serve_parser.add_argument(
        "--parallel", action="store_true", default=None,
        help="fan jobs out over the worker pool (default: REPRO_PARALLEL)",
    )
    serve_parser.add_argument("--max-workers", type=int, default=None)
    serve_parser.add_argument("--max-retries", type=int, default=1)
    serve_parser.add_argument(
        "--max-iterations", type=int, default=None,
        help="stop --watch after this many drain passes",
    )
    serve_parser.add_argument(
        "--metrics-out", type=pathlib.Path, default=None,
        help="append one metrics-JSONL line per settled job",
    )
    serve_parser.add_argument("--json", action="store_true")

    status_parser = sub.add_parser(
        "status", help="spool / batch progress and metrics export"
    )
    status_parser.add_argument(
        "batch", nargs="?", default=None,
        help="batch id (default: whole-spool summary)",
    )
    status_parser.add_argument(
        "--spool", type=pathlib.Path, default=None,
        help="spool directory (default: REPRO_SPOOL_DIR or the XDG cache)",
    )
    status_parser.add_argument(
        "--metrics-out", type=pathlib.Path, default=None,
        help="write one metrics-JSONL line per done job in the batch",
    )
    status_parser.add_argument("--json", action="store_true")

    bench_parser = sub.add_parser(
        "bench", help="simulator throughput benchmarks"
    )
    bench_sub = bench_parser.add_subparsers(
        dest="bench_command", required=True
    )
    bkernel = bench_sub.add_parser(
        "kernel", help="cycle-kernel KIPS (timing-core throughput)"
    )
    bkernel.add_argument(
        "--compare", action="store_true",
        help="also run the legacy single-step engine and report the "
             "staged timing engine's speedup per label",
    )
    bkernel.add_argument(
        "--labels", nargs="*", default=None,
        help="profiles to measure (default: the four KIPS-gate profiles)",
    )
    bkernel.add_argument("--instructions", type=int, default=None)
    bkernel.add_argument("--warmup", type=int, default=None)
    bkernel.add_argument("--repeats", type=int, default=None)
    bkernel.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="BENCH_kernel.json to gate against (exit 1 on regression; "
             "REPRO_KIPS_SCALE normalises the floors for host speed)",
    )
    bkernel.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the JSON report to this file",
    )
    bkernel.add_argument("--json", action="store_true")
    bkernel.add_argument(
        "--profile", action="store_true",
        help="add a cProfile breakdown per pipeline stage to the "
             "report (separate instrumented runs; does not affect the "
             "KIPS numbers)",
    )
    bfullrun = bench_sub.add_parser(
        "fullrun", help="time-sharded full-run speedup and accuracy"
    )
    bfullrun.add_argument(
        "--labels", nargs="*", default=None,
        help="profiles to measure (default: the fullrun-gate profile)",
    )
    bfullrun.add_argument("--instructions", type=int, default=None)
    bfullrun.add_argument("--warmup", type=int, default=None)
    bfullrun.add_argument(
        "--shards", type=int, default=None,
        help="time shards per run (default: the baseline's 4)",
    )
    bfullrun.add_argument("--shard-warmup", type=int, default=None)
    bfullrun.add_argument("--repeats", type=int, default=None)
    bfullrun.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="BENCH_fullrun.json to gate against (exit 1 on regression; "
             "accuracy bounds always apply, the speedup floor only on "
             "hosts with enough cores; REPRO_FULLRUN_SCALE normalises "
             "the floor for host speed)",
    )
    bfullrun.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the JSON report to this file",
    )
    bfullrun.add_argument("--json", action="store_true")

    repro_parser = sub.add_parser(
        "reproduce", help="regenerate paper tables/figures"
    )
    repro_parser.add_argument(
        "--experiments",
        default="all",
        help="comma-separated subset: fig3,fig4,fig9,fig10,fig11,fig13,"
             "table1,table2,table3,hw,mprotect (default: all)",
    )
    repro_parser.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("results"),
    )
    repro_parser.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="time-shard every detailed run into K checkpointed "
             "intervals over the worker pool (default: "
             "REPRO_TIME_SHARDS, else 1 — the exact monolithic path)",
    )

    report_parser = sub.add_parser(
        "report",
        help="provenance ledger: regenerate artifacts with bootstrap "
             "CIs, or diff against the checked-in baseline",
    )
    report_parser.add_argument(
        "action", nargs="?", choices=["all", "diff"], default="all",
        help="all: regenerate + write the ledger; diff: verify a "
             "written manifest against a baseline manifest",
    )
    report_parser.add_argument(
        "--only", default=None,
        help="comma-separated artifact subset, e.g. fig9,fig10,table3",
    )
    report_parser.add_argument(
        "--repeats", type=int, default=3,
        help="seed-varied repeats per figure (CIs; default 3)",
    )
    report_parser.add_argument(
        "--instructions", type=int, default=None,
        help="instruction budget per point (default: the harness "
             "measurement budget)",
    )
    report_parser.add_argument(
        "--seed", type=int, default=0,
        help="bootstrap base seed (same seed -> identical CI bounds)",
    )
    report_parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path("results/final"),
        help="ledger directory (default: results/final)",
    )
    report_parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="baseline manifest for `diff` (default: "
             "<out>/baseline.json)",
    )
    report_parser.add_argument(
        "--write-baseline", action="store_true",
        help="after `all`, also copy the manifest to the baseline path",
    )
    report_parser.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "simpoint":
        return _cmd_simpoint(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    if args.command == "report":
        return _cmd_report(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_info() -> int:
    import repro
    from repro.harness import render_table, table3_configuration
    from repro.workloads import ALL_PROFILES

    print(f"SpecMPK reproduction v{repro.__version__}")
    print()
    print(render_table(table3_configuration(), title="Core configuration"))
    print()
    print("Workloads:")
    for profile in ALL_PROFILES:
        print(f"  {profile.label:26s} ({profile.suite}, "
              f"{profile.working_set_kib} KiB working set)")
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs import load_snapshot, prometheus_text

    if args.metrics_command == "dump":
        from repro.core import WrpkruPolicy
        from repro.harness import RunRequest, execute

        result = execute(RunRequest(
            workload=args.label,
            policy=WrpkruPolicy(args.policy),
            instructions=args.instructions,
            metrics=True,
        ))
        snapshot = result.metrics
        if args.format == "prom":
            text = prometheus_text(snapshot)
        else:
            text = snapshot.to_json(indent=2)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
            print(f"metrics written to {args.out}")
        else:
            print(text)
        return 0
    if args.metrics_command == "diff":
        after = load_snapshot(args.snapshot_a)
        before = load_snapshot(args.snapshot_b)
        delta = after.diff(before)
        movers = delta.top(args.top, by_magnitude=True)
        print(f"=== {args.snapshot_a} - {args.snapshot_b} "
              f"(top {args.top} by |change|) ===")
        if not movers:
            print("  (no counter changed)")
        for name, value in movers:
            print(f"  {name:45s} {value:+.0f}")
        for name in sorted(delta.gauges):
            change = delta.gauges[name]
            if change:
                print(f"  {name:45s} {change:+.4f} (gauge)")
        return 0
    # top
    snapshot = load_snapshot(args.snapshot)
    rows = snapshot.top(args.top, prefix=args.prefix)
    scope = f' under "{args.prefix}"' if args.prefix else ""
    print(f"=== top {len(rows)} counters{scope} ===")
    for name, value in rows:
        print(f"  {name:45s} {value:.0f}")
    return 0


def _cmd_cache(args) -> int:
    import json

    from repro.perf.runcache import cache_enabled, default_cache

    cache = default_cache()
    if args.action == "clear":
        removed = cache.clear()
        if args.json:
            print(json.dumps({"cleared": removed}))
        else:
            print(f"cleared {removed} cached run(s) from {cache.directory}")
        return 0
    stats = cache.stats()
    stats["enabled"] = cache_enabled()
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        state = "enabled" if stats["enabled"] else "disabled (REPRO_CACHE=0)"
        print(f"run cache: {state}")
        print(f"  directory: {stats['directory']}")
        print(f"  entries:   {stats['entries']} "
              f"({stats['bytes'] / 1024:.1f} KiB)")
        print(f"  this process: {stats['hits']} hit(s), "
              f"{stats['misses']} miss(es)")
        print(f"  lifetime:  {stats['lifetime_hits']} hit(s), "
              f"{stats['lifetime_misses']} miss(es)")
    return 0


def _cmd_run(args) -> int:
    import json

    from repro.core import WrpkruPolicy
    from repro.harness import RunRequest, execute

    policies = (
        list(WrpkruPolicy)
        if args.policy == "all"
        else [WrpkruPolicy(args.policy)]
    )
    baseline = None
    json_out = {}
    for policy in policies:
        stats = execute(RunRequest(
            workload=args.label,
            policy=policy,
            instructions=args.instructions,
            fastforward=args.fastforward,
        )).stats
        if baseline is None:
            baseline = stats.ipc
        if args.json:
            json_out[policy.value] = stats.as_dict()
            continue
        print(f"=== {args.label} under {policy.value} ===")
        print(stats.report())
        if policy is not policies[0]:
            print(f"normalized IPC vs {policies[0].value}: "
                  f"{stats.ipc / baseline:.3f}")
        print()
    if args.json:
        print(json.dumps({"workload": args.label, "runs": json_out},
                         indent=2))
    return 0


def _cmd_trace(args) -> int:
    from repro.core import WrpkruPolicy
    from repro.harness import RunRequest, TraceOptions, execute
    from repro.trace import export_chrome_trace, render_pipeline_text

    result = execute(RunRequest(
        workload=args.label,
        policy=WrpkruPolicy(args.policy),
        instructions=args.instructions,
        warmup=args.warmup,
        trace=TraceOptions(
            enabled=True,
            capacity=args.capacity,
            cycle_capacity=args.capacity,
        ),
    ))
    wants = (
        {"chrome", "konata", "topdown"}
        if args.format == "all" else {args.format}
    )
    print(f"=== {args.label} under {args.policy} "
          f"({result.metadata.instructions} measured instructions) ===")
    if "topdown" in wants:
        print()
        print(result.topdown().report())
    args.out.mkdir(parents=True, exist_ok=True)
    stem = args.label.replace(" ", "_").replace("(", "").replace(")", "")
    if "chrome" in wants:
        path = args.out / f"{stem}.{args.policy}.trace.json"
        export_chrome_trace(result.trace, path)
        print(f"\nChrome trace written to {path}"
              "\n  (load in chrome://tracing or https://ui.perfetto.dev)")
    if "konata" in wants:
        path = args.out / f"{stem}.{args.policy}.pipeline.txt"
        text = render_pipeline_text(result.trace, last=args.last)
        path.write_text(text + "\n")
        print(f"\nPipeline view ({args.last} most recent instructions):")
        print(text)
        print(f"\nwritten to {path}")
    return 0


def _cmd_attack(args) -> int:
    from repro.attacks import (
        build_chosen_code_poc,
        build_spectre_bti_poc,
        build_spectre_v1_poc,
        build_speculative_overflow_poc,
        run_attack,
    )
    from repro.core import WrpkruPolicy

    builders = {
        "v1": (build_spectre_v1_poc, False),
        "bti": (build_spectre_bti_poc, False),
        "overflow": (build_speculative_overflow_poc, False),
        "chosen": (build_chosen_code_poc, True),
    }
    builder, expect_fault = builders[args.name]
    attack = builder()
    leaked_anywhere = False
    for policy in WrpkruPolicy:
        result = run_attack(attack, policy, expect_fault=expect_fault)
        verdict = "LEAKED" if result.leaked else "mitigated"
        leaked_anywhere |= result.leaked
        print(f"{policy.value:15s}: {verdict} "
              f"(hot probe values: {result.hot_values or '-'})")
    return 0 if leaked_anywhere else 1  # v1 must leak somewhere


def _cmd_compile(args) -> int:
    from repro.core import CoreConfig, Simulator, WrpkruPolicy
    from repro.lang import CompileOptions, compile_module

    source = args.path.read_text()
    options = CompileOptions(
        shadow_stack=args.shadow_stack,
        protect_secure_arrays=not args.no_secure_arrays,
    )
    compiled = compile_module(source, options)
    wrpkrus = sum(
        1 for inst in compiled.program.instructions if inst.is_wrpkru
    )
    print(f"compiled {args.path}: {len(compiled.program)} instructions, "
          f"{wrpkrus} WRPKRU sites")
    if args.emit_asm:
        print(compiled.program.listing())
        return 0
    policies = (
        list(WrpkruPolicy)
        if args.policy == "all"
        else [WrpkruPolicy(args.policy)]
    )
    for policy in policies:
        sim = Simulator(
            compiled.program, CoreConfig(wrpkru_policy=policy),
            initial_pkru=compiled.initial_pkru,
        )
        sim.prewarm_tlb()
        result = sim.run(max_cycles=10_000_000)
        if result.fault is not None:
            print(f"{policy.value}: FAULT: {result.fault}")
            return 1
        value = sim.prf.read(
            sim.rename_tables.amt[compiled.result_register()]
        )
        print(f"{policy.value:15s}: main() = {value} "
              f"({sim.stats.cycles} cycles, IPC {sim.stats.ipc:.2f})")
    return 0


def _cmd_checkpoint(args) -> int:
    from repro.core import CoreConfig, WrpkruPolicy
    from repro.isa.emulator import make_emulator
    from repro.state import (
        Checkpoint,
        CheckpointError,
        WarmTouch,
        fast_forward,
        resume_simulator,
        take_checkpoint,
    )
    from repro.workloads import build_workload, profile_by_label

    workload = build_workload(profile_by_label(args.label))
    emulator = make_emulator(workload)
    warm = WarmTouch()
    executed = fast_forward(emulator, args.at, warm=warm)
    try:
        checkpoint = take_checkpoint(
            emulator, label=f"{args.label} @ {executed}", warm=warm
        )
    except CheckpointError as error:
        print(f"error: {error} (program halted after {executed} "
              "instructions)")
        return 1
    stem = args.label.replace(" ", "_").replace("(", "").replace(")", "")
    out = args.out or pathlib.Path("results") / f"{stem}.ckpt"
    out.parent.mkdir(parents=True, exist_ok=True)
    checkpoint.dump(out)
    image = checkpoint.snapshot.memory
    print(f"checkpoint written to {out}")
    print(f"  position    : {checkpoint.instructions} instructions")
    print(f"  pc          : {checkpoint.snapshot.pc}")
    print(f"  pkru        : {checkpoint.snapshot.pkru:#06x}")
    print(f"  dirty pages : {image.dirty_pages()} "
          f"(chain depth {image.chain_length()})")
    print(f"  size        : {out.stat().st_size} bytes")
    if args.measure:
        config = CoreConfig(wrpkru_policy=WrpkruPolicy(args.policy))
        sim = resume_simulator(
            workload.program, Checkpoint.load(out), config=config
        )
        result = sim.run(
            max_cycles=500 * (args.measure + 1),
            max_instructions=args.measure,
        )
        if result.fault is not None:
            print(f"resumed run faulted: {result.fault}")
            return 1
        print(f"resumed {args.policy}: {result.stats.instructions_retired} "
              f"instructions in {result.stats.cycles} cycles "
              f"(IPC {result.stats.ipc:.3f})")
    return 0


def _cmd_simpoint(args) -> int:
    import json

    from repro.core import CoreConfig, WrpkruPolicy
    from repro.simpoint import collect_bbv, select_simpoints, weighted_ipc
    from repro.workloads import build_workload, profile_by_label

    workload = build_workload(profile_by_label(args.label))
    profile = collect_bbv(
        workload.program,
        interval_length=args.interval_length,
        max_instructions=args.profile_instructions,
        pkru=workload.initial_pkru,
    )
    selection = select_simpoints(profile, top_n=args.top_n)
    policies = (
        list(WrpkruPolicy)
        if args.policy == "all"
        else [WrpkruPolicy(args.policy)]
    )
    ipcs = {
        policy: weighted_ipc(
            workload.program,
            selection,
            CoreConfig(wrpkru_policy=policy),
            initial_pkru=workload.initial_pkru,
            fastforward=not args.no_fastforward,
            parallel=args.parallel,
        )
        for policy in policies
    }
    if args.json:
        print(json.dumps({
            "workload": args.label,
            "interval_length": selection.interval_length,
            "points": [
                {"interval": p.interval_index, "weight": p.weight,
                 "cluster": p.cluster}
                for p in selection.points
            ],
            "fastforward": not args.no_fastforward,
            "weighted_ipc": {
                policy.value: ipc for policy, ipc in ipcs.items()
            },
        }, indent=2))
        return 0
    print(f"=== {args.label}: {len(selection.points)} simpoints over "
          f"{selection.num_intervals} intervals of "
          f"{selection.interval_length} instructions ===")
    for point in selection.points:
        print(f"  interval {point.interval_index:4d}  "
              f"weight {point.weight:.3f}  cluster {point.cluster}")
    mode = "full-prefix" if args.no_fastforward else "checkpointed"
    print(f"\nweighted IPC ({mode}):")
    for policy, ipc in ipcs.items():
        print(f"  {policy.value:15s}: {ipc:.4f}")
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.core import WrpkruPolicy
    from repro.harness import RequestError, RunRequest
    from repro.service import SweepService, default_spool_dir
    from repro.workloads import ALL_PROFILES
    from repro.workloads.instrument import InstrumentMode

    labels = list(args.labels)
    if args.all_labels:
        labels = [profile.label for profile in ALL_PROFILES]
    if not labels:
        print("error: no workloads given (pass labels or --all-labels)",
              file=sys.stderr)
        return 2
    policies = (
        list(WrpkruPolicy)
        if args.policy == "all"
        else [WrpkruPolicy(args.policy)]
    )
    try:
        requests = [
            RunRequest(
                workload=label,
                policy=policy,
                mode=InstrumentMode(args.mode),
                instructions=args.instructions,
                warmup=args.warmup,
                fastforward=args.fastforward,
                time_shards=args.time_shards,
                shard_warmup=args.shard_warmup,
            )
            for label in labels
            for policy in policies
        ]
    except RequestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    spool = args.spool or default_spool_dir()
    service = SweepService(spool)
    handle = service.submit(requests, batch_id=args.batch_id)
    summary = {
        "batch": handle.batch_id,
        "spool": str(spool),
        "submitted": len(handle.job_ids),
        "deduped": handle.deduped,
        **service.spool.counts(),
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"batch {handle.batch_id}: {summary['submitted']} job(s) "
              f"({summary['deduped']} already spooled) in {spool}")
        print(f"  spool now: {summary['pending']} pending, "
              f"{summary['running']} running, {summary['done']} done, "
              f"{summary['failed']} failed")
        print(f"  drain with: python -m repro serve --spool {spool}")
    if args.watch:
        return _watch_batch(
            service.spool, handle.job_ids, args.poll_interval
        )
    return 0


def _watch_batch(spool, job_ids, poll_interval: float) -> int:
    """Poll the spool until every job settles; render live progress.

    A sharded job sits in ``running/`` for its whole detailed window,
    so besides per-job completion the status line surfaces the
    ``shards_done/shards_total`` counters the scheduler stamps onto the
    running job document (:meth:`SpoolDir.note_shards`) — intra-run
    progress for runs that take minutes.  Ctrl-C stops watching only;
    the batch stays spooled.
    """
    import time

    from repro.obs.progress import ProgressReporter
    from repro.service import JobState

    pending = list(dict.fromkeys(job_ids))  # de-duplicated, ordered
    reporter = ProgressReporter(len(pending), label="batch").start()
    failed = 0
    try:
        while pending:
            note = None
            for job_id in list(pending):
                state = spool.state_of(job_id)
                if state in (JobState.DONE, JobState.FAILED):
                    pending.remove(job_id)
                    if state is JobState.FAILED:
                        failed += 1
                    reporter.advance(
                        job_id[:12]
                        + (" FAILED" if state is JobState.FAILED else "")
                    )
                elif state is JobState.RUNNING and note is None:
                    doc = spool.job_doc(job_id) or {}
                    total = doc.get("shards_total")
                    note = (
                        f"{job_id[:12]} shard "
                        f"{doc.get('shards_done', 0)}/{total}"
                        if total
                        else job_id[:12]
                    )
            if not pending:
                break
            if note is not None:
                reporter.heartbeat(note)
            time.sleep(poll_interval)
    except KeyboardInterrupt:
        reporter.heartbeat("interrupted; batch left spooled")
    finally:
        reporter.finish()
    return 1 if failed else 0


def _cmd_serve(args) -> int:
    import json

    from repro.obs import jsonl_line
    from repro.service import SweepService, default_spool_dir

    spool = args.spool or default_spool_dir()
    service = SweepService(spool, max_retries=args.max_retries)
    settled = {}

    def record(job_id, result, error):
        settled[job_id] = (result, error)

    service.serve(
        once=not args.watch,
        poll_interval=args.poll_interval,
        parallel=args.parallel,
        max_workers=args.max_workers,
        on_result=record,
        max_iterations=args.max_iterations,
    )
    if args.metrics_out is not None:
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.metrics_out, "a") as handle:
            for job_id in sorted(settled):
                result, _error = settled[job_id]
                if result is not None and result.metrics is not None:
                    handle.write(jsonl_line(result.metrics) + "\n")
    summary = {
        "spool": str(spool),
        "settled": len(settled),
        **service.counters,
        **service.spool.counts(),
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"served {summary['settled']} job(s) from {spool}: "
              f"{summary['executed']} executed, "
              f"{summary['from_cache']} from cache, "
              f"{summary['from_spool']} from spool, "
              f"{summary['retried']} retried, {summary['failed']} failed")
    return 1 if summary["failed"] else 0


def _cmd_status(args) -> int:
    import json

    from repro.obs import jsonl_line
    from repro.obs.snapshot import MetricsSnapshot
    from repro.service import JobState, SpoolDir, default_spool_dir

    spool = SpoolDir(args.spool or default_spool_dir())
    if args.batch is None:
        summary = {
            "spool": str(spool.root),
            "batches": spool.batch_ids(),
            **spool.counts(),
        }
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(f"spool {spool.root}: {summary['pending']} pending, "
                  f"{summary['running']} running, {summary['done']} done, "
                  f"{summary['failed']} failed")
            for batch_id in summary["batches"]:
                print(f"  batch {batch_id}: "
                      f"{len(spool.batch_jobs(batch_id))} job(s)")
        return 0
    try:
        job_ids = spool.batch_jobs(args.batch)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    counts = {state.value: 0 for state in JobState}
    unknown = 0
    jobs = []
    for job_id in job_ids:
        state = spool.state_of(job_id)
        if state is None:
            unknown += 1
        else:
            counts[state.value] += 1
        doc = spool.job_doc(job_id) or {}
        jobs.append({
            "job": job_id,
            "state": state.value if state is not None else None,
            "shards_done": doc.get("shards_done"),
            "shards_total": doc.get("shards_total"),
        })
    if args.metrics_out is not None:
        args.metrics_out.parent.mkdir(parents=True, exist_ok=True)
        written = 0
        with open(args.metrics_out, "w") as handle:
            for job_id in sorted(set(job_ids)):
                payload = spool.result_payload(job_id)
                if payload and payload.get("metrics"):
                    snapshot = MetricsSnapshot.from_dict(payload["metrics"])
                    handle.write(jsonl_line(snapshot) + "\n")
                    written += 1
        print(f"{written} metrics line(s) written to {args.metrics_out}",
              file=sys.stderr)
    summary = {
        "batch": args.batch,
        "spool": str(spool.root),
        "total": len(job_ids),
        "unknown": unknown,
        **counts,
        "jobs": jobs,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"batch {args.batch}: {summary['total']} job(s) — "
              f"{summary['pending']} pending, {summary['running']} running, "
              f"{summary['done']} done, {summary['failed']} failed")
        # Per-job table; sharded jobs surface the intra-run progress
        # the scheduler stamps onto the running job doc, so a long
        # detailed run is visible from `repro status` — not only from
        # `submit --watch`.
        for job in jobs:
            shards = (
                f"  shard {job['shards_done']}/{job['shards_total']}"
                if job["shards_total"] else ""
            )
            print(f"  {job['job'][:16]}  "
                  f"{job['state'] or 'unknown':8s}{shards}")
    return 0


def _cmd_bench(args) -> int:
    if args.bench_command == "fullrun":
        return _cmd_bench_fullrun(args)
    import json

    from repro.perf.envflag import env_float
    from repro.perf.kernelbench import (
        DEFAULT_INSTRUCTIONS,
        DEFAULT_REPEATS,
        DEFAULT_WARMUP,
        check_against_reference,
        profile_kernel_bench,
        run_kernel_bench,
    )

    reference = None
    methodology = {}
    if args.baseline is not None:
        reference = json.loads(args.baseline.read_text())
        methodology = reference.get("methodology", {})
    report = run_kernel_bench(
        labels=args.labels or None,
        instructions=args.instructions
        or methodology.get("instructions", DEFAULT_INSTRUCTIONS),
        warmup=args.warmup or methodology.get("warmup", DEFAULT_WARMUP),
        repeats=args.repeats or methodology.get("repeats", DEFAULT_REPEATS),
        compare=args.compare,
    )
    if args.profile:
        report["profile"] = profile_kernel_bench(
            labels=args.labels or None,
            instructions=args.instructions
            or methodology.get("instructions", DEFAULT_INSTRUCTIONS),
            warmup=args.warmup or methodology.get("warmup", DEFAULT_WARMUP),
        )
    failures = []
    if reference is not None:
        scale = env_float("REPRO_KIPS_SCALE", 1.0)
        report["host_scale"] = scale
        failures = check_against_reference(report, reference, scale=scale)
        report["regressions"] = failures
    if args.out is not None:
        from repro.report import atomic_write_text

        atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        m = report["methodology"]
        print(f"=== cycle-kernel throughput "
              f"({m['instructions']} + {m['warmup']} warmup instructions, "
              f"best of {m['repeats']}) ===")
        for label, kips in report["staged"].items():
            line = f"  {label:26s} {kips:8.1f} KIPS"
            if args.compare:
                line += (f"  (single-step {report['single_step'][label]:.1f},"
                         f" speedup {report['speedup'][label]:.2f}x)")
            print(line)
        print(f"  {'geomean':26s} {report['geomean']:8.1f} KIPS")
        if args.compare:
            print(f"  staged-engine geomean speedup: "
                  f"{report['geomean_speedup']:.2f}x")
        if args.profile:
            print("  --- stage breakdown (cProfile self time) ---")
            for stage, entry in report["profile"]["stages"].items():
                print(f"  {stage:26s} {entry['seconds']:8.3f} s "
                      f"({entry['percent']:.1f}%)")
        for failure in failures:
            print(f"  REGRESSION: {failure}")
        if args.out is not None:
            print(f"report written to {args.out}")
    return 1 if failures else 0


def _cmd_bench_fullrun(args) -> int:
    import json

    from repro.perf.envflag import env_float
    from repro.perf.fullrunbench import (
        DEFAULT_INSTRUCTIONS,
        DEFAULT_REPEATS,
        DEFAULT_SHARDS,
        DEFAULT_WARMUP,
        check_against_reference,
        run_fullrun_bench,
    )

    reference = None
    methodology = {}
    if args.baseline is not None:
        reference = json.loads(args.baseline.read_text())
        methodology = reference.get("methodology", {})
    report = run_fullrun_bench(
        labels=args.labels
        or ([methodology["label"]] if "label" in methodology else None),
        instructions=args.instructions
        or methodology.get("instructions", DEFAULT_INSTRUCTIONS),
        warmup=args.warmup or methodology.get("warmup", DEFAULT_WARMUP),
        shards=args.shards or methodology.get("shards", DEFAULT_SHARDS),
        shard_warmup=(
            args.shard_warmup
            if args.shard_warmup is not None
            else methodology.get("shard_warmup")
        ),
        repeats=args.repeats or methodology.get("repeats", DEFAULT_REPEATS),
    )
    failures = []
    if reference is not None:
        scale = env_float("REPRO_FULLRUN_SCALE", 1.0)
        report["host_scale"] = scale
        failures = check_against_reference(report, reference, scale=scale)
        report["regressions"] = failures
    if args.out is not None:
        from repro.report import atomic_write_text

        atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        m = report["methodology"]
        host = report["host"]
        print(f"=== time-sharded full run ({m['instructions']} + "
              f"{m['warmup']} warmup instructions, {m['shards']} shards, "
              f"best of {m['repeats']}; {host['effective_workers']} "
              f"effective worker(s) on {host['cpu_count']} core(s)) ===")
        for label, entry in report["labels"].items():
            print(f"  {label:26s} mono {entry['mono_seconds']:7.3f}s  "
                  f"sharded {entry['sharded_seconds']:7.3f}s  "
                  f"speedup {entry['speedup']:5.2f}x  "
                  f"ipc err {entry['ipc_error_percent']:.4f}%  "
                  f"retired "
                  f"{'exact' if entry['retired_exact'] else 'INEXACT'}")
        print(f"  {'geomean speedup':26s} {report['geomean_speedup']:5.2f}x")
        for failure in failures:
            print(f"  REGRESSION: {failure}")
        if args.out is not None:
            print(f"report written to {args.out}")
    return 1 if failures else 0


def _cmd_reproduce(args) -> int:
    from repro.harness import (
        fig3_serialization_study,
        fig4_overhead_breakdown,
        fig9_normalized_ipc,
        fig10_wrpkru_frequency,
        fig11_rob_pkru_sensitivity,
        fig13_flush_reload,
        motivation_mprotect_vs_mpk,
        render_bars,
        render_latency_series,
        render_table,
        section8_hardware_overhead,
        table1_isolation_properties,
        table2_source_operands,
        table3_configuration,
    )

    from repro.report import atomic_write_text

    out: pathlib.Path = args.out
    out.mkdir(parents=True, exist_ok=True)
    wanted = (
        None if args.experiments == "all"
        else set(args.experiments.split(","))
    )

    def selected(name: str) -> bool:
        return wanted is None or name in wanted

    def save(name: str, text: str) -> None:
        atomic_write_text(out / f"{name}.txt", text + "\n")
        print(f"[{name}] written to {out / (name + '.txt')}")

    if selected("table1"):
        data = table1_isolation_properties()
        save("table1", render_table(data["rows"], title="Table I"))
    if selected("table2"):
        save("table2", render_table(table2_source_operands(),
                                    title="Table II"))
    if selected("table3"):
        save("table3", render_table(table3_configuration(),
                                    title="Table III"))
    if selected("hw"):
        data = section8_hardware_overhead()
        save("hw_overhead",
             f"total: {data['total_bytes']:.1f} B "
             f"({data['l1d_fraction']:.2%} of L1D)")
    if selected("fig13"):
        data = fig13_flush_reload()
        save("fig13", render_latency_series(
            data["nonsecure_latencies"], title="NonSecure:")
            + "\n" + render_latency_series(
                data["specmpk_latencies"], title="SpecMPK:"))
    shards = args.shards
    if selected("fig3"):
        rows = fig3_serialization_study(time_shards=shards)
        save("fig3", render_table(rows, title="Fig. 3"))
    if selected("fig4"):
        rows = fig4_overhead_breakdown(time_shards=shards)
        save("fig4", render_table(rows, title="Fig. 4"))
    if selected("fig9"):
        rows = fig9_normalized_ipc(time_shards=shards)
        save("fig9", render_table(rows, title="Fig. 9"))
    if selected("fig10"):
        rows = fig10_wrpkru_frequency(time_shards=shards)
        save("fig10", render_bars(
            [(r["workload"], r["wrpkru_per_kilo"]) for r in rows],
            title="Fig. 10"))
    if selected("fig11"):
        rows = fig11_rob_pkru_sensitivity(time_shards=shards)
        save("fig11", render_table(rows, title="Fig. 11"))
    if selected("mprotect"):
        rows = motivation_mprotect_vs_mpk()
        save("mprotect", render_table(rows, title="mprotect vs MPK"))
    return 0


def _cmd_report(args) -> int:
    import json
    import shutil

    from repro.report import diff_manifests
    from repro.report.pipeline import (
        ReportConfig,
        generate_report,
        load_or_fail,
    )

    only = (
        None if args.only is None
        else {name for name in args.only.split(",") if name}
    )
    baseline_path = args.baseline or (args.out / "baseline.json")
    if args.action == "diff":
        try:
            baseline = load_or_fail(baseline_path)
            current = load_or_fail(args.out / "manifest.json")
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if (baseline.instructions != current.instructions
                or baseline.repeats != current.repeats):
            print(
                "error: manifest was generated at different budgets "
                f"(baseline: instructions={baseline.instructions} "
                f"repeats={baseline.repeats}; current: "
                f"instructions={current.instructions} "
                f"repeats={current.repeats}) — values are not "
                "comparable; regenerate with matching --instructions/"
                "--repeats", file=sys.stderr,
            )
            return 2
        report = diff_manifests(baseline, current, only=only)
        if args.json:
            print(json.dumps({
                "baseline": str(baseline_path),
                "manifest": str(args.out / "manifest.json"),
                "checks": len(report.items),
                "failures": [item.describe() for item in report.failures],
                "ok": report.ok,
            }, indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1
    config = ReportConfig(
        out=args.out,
        repeats=args.repeats,
        instructions=args.instructions,
        seed=args.seed,
        only=only,
    )
    try:
        manifest, counters = generate_report(
            config, echo=None if args.json else print
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.out / "manifest.json", baseline_path)
    if args.json:
        print(json.dumps({
            "out": str(args.out),
            **counters,
            # After the counters spread: the artifact-name list wins
            # over the bare "artifacts" count (which is just its len).
            "artifacts": sorted(manifest.artifacts),
            "baseline_written": bool(args.write_baseline),
        }, indent=2))
    else:
        print(f"ledger written to {args.out} "
              f"({counters['artifacts']} artifact(s), "
              f"{counters['snapshots']} telemetry snapshot(s); "
              f"run cache: {counters['cache_hits']} hit(s), "
              f"{counters['cache_misses']} miss(es))")
        if args.write_baseline:
            print(f"baseline written to {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

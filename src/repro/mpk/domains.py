"""libmpk/VDom-style domain virtualisation (paper SSX-A).

Hardware MPK offers 16 pKeys; applications like per-client session-key
isolation need hundreds of domains.  This module virtualises domains
over the physical keys: each virtual domain owns a set of pages, and a
bounded pool of physical pKeys is multiplexed across the *active*
domains with LRU eviction.  Evicting a domain recolours its pages to
the reserved "parked" key whose permissions are kept Access-Disabled,
so inactive domains stay isolated (libmpk's page-disabling approach).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from ..memory.address_space import AddressSpace
from .pkru import NUM_PKEYS, set_permissions


class DomainError(Exception):
    """Misuse of the virtual-domain API."""


class VirtualDomain:
    """One virtual protection domain: a set of page ranges."""

    __slots__ = ("vid", "ranges", "physical_pkey")

    def __init__(self, vid: int) -> None:
        self.vid = vid
        self.ranges: List[Tuple[int, int]] = []
        self.physical_pkey: Optional[int] = None

    @property
    def mapped(self) -> bool:
        return self.physical_pkey is not None


class DomainManager:
    """Multiplexes virtual domains onto physical pKeys.

    Args:
        address_space: The process memory the domains colour.
        parked_pkey: Physical key colouring every inactive domain's
            pages; its PKRU permissions must stay Access-Disabled.
        reserved: Physical keys not managed here (e.g. pKey 0).
    """

    def __init__(
        self,
        address_space: AddressSpace,
        parked_pkey: int = 15,
        reserved: Set[int] = frozenset({0}),
    ) -> None:
        if parked_pkey in reserved:
            raise DomainError("parked pkey cannot be reserved")
        self.space = address_space
        self.parked_pkey = parked_pkey
        self._pool = [
            key
            for key in range(NUM_PKEYS)
            if key not in reserved and key != parked_pkey
        ]
        self._domains: Dict[int, VirtualDomain] = {}
        #: Active domains in LRU order (front = least recent).
        self._active: OrderedDict = OrderedDict()
        self._next_vid = 0
        self.evictions = 0
        self.activations = 0

    # -- domain lifecycle ----------------------------------------------------

    def create_domain(self) -> int:
        """Create a new (inactive) virtual domain, return its id."""
        vid = self._next_vid
        self._next_vid += 1
        self._domains[vid] = VirtualDomain(vid)
        return vid

    def attach(self, vid: int, base: int, size: int) -> None:
        """Add a page range to a domain and colour it appropriately."""
        domain = self._domain(vid)
        domain.ranges.append((base, size))
        pkey = (
            domain.physical_pkey if domain.mapped else self.parked_pkey
        )
        self.space.pkey_mprotect(base, size, pkey)

    # -- activation / eviction --------------------------------------------------

    def activate(self, vid: int) -> int:
        """Bind *vid* to a physical pKey (evicting LRU if needed).

        Returns the physical pKey the caller should enable in PKRU.
        """
        domain = self._domain(vid)
        self.activations += 1
        if domain.mapped:
            self._active.move_to_end(vid)
            return domain.physical_pkey
        pkey = self._free_pkey() or self._evict_lru()
        domain.physical_pkey = pkey
        self._active[vid] = domain
        for base, size in domain.ranges:
            self.space.pkey_mprotect(base, size, pkey)
        return pkey

    def deactivate(self, vid: int) -> None:
        """Explicitly park a domain, releasing its physical key."""
        domain = self._domain(vid)
        if not domain.mapped:
            return
        self._park(domain)
        self._active.pop(vid, None)

    def _free_pkey(self) -> Optional[int]:
        used = {d.physical_pkey for d in self._active.values()}
        for pkey in self._pool:
            if pkey not in used:
                return pkey
        return None

    def _evict_lru(self) -> int:
        if not self._active:
            raise DomainError("no active domains to evict")
        _, victim = self._active.popitem(last=False)
        pkey = victim.physical_pkey
        self._park(victim)
        self.evictions += 1
        return pkey

    def _park(self, domain: VirtualDomain) -> None:
        for base, size in domain.ranges:
            self.space.pkey_mprotect(base, size, self.parked_pkey)
        domain.physical_pkey = None

    # -- PKRU helpers --------------------------------------------------------------

    def pkru_with_domain(self, pkru: int, vid: int,
                         write: bool = True) -> int:
        """PKRU granting access to *vid* (which must be active)."""
        domain = self._domain(vid)
        if not domain.mapped:
            raise DomainError(f"domain {vid} is not active")
        return set_permissions(
            pkru, domain.physical_pkey,
            access_disable=False, write_disable=not write,
        )

    def base_pkru(self) -> int:
        """PKRU with every managed key (and the parked key) disabled."""
        pkru = 0
        for pkey in self._pool + [self.parked_pkey]:
            pkru = set_permissions(pkru, pkey, True, True)
        return pkru

    # -- introspection -----------------------------------------------------------------

    def _domain(self, vid: int) -> VirtualDomain:
        if vid not in self._domains:
            raise DomainError(f"unknown domain {vid}")
        return self._domains[vid]

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def capacity(self) -> int:
        return len(self._pool)

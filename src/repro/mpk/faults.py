"""Fault types raised by the memory system and MPK permission checks."""

from __future__ import annotations


class MemoryFault(Exception):
    """Base class for all architectural memory faults."""

    def __init__(self, address: int, access: str, message: str) -> None:
        super().__init__(message)
        self.address = address
        self.access = access


class SegmentationFault(MemoryFault):
    """Access to an unmapped virtual address."""

    def __init__(self, address: int, access: str) -> None:
        super().__init__(
            address, access, f"segmentation fault: {access} at {address:#x}"
        )


class AlignmentFault(MemoryFault):
    """Access not aligned to the 8-byte word size."""

    def __init__(self, address: int, access: str) -> None:
        super().__init__(
            address, access, f"alignment fault: {access} at {address:#x}"
        )


class ProtectionFault(MemoryFault):
    """MPK or page-permission violation.

    Carries the pKey so trap handlers (e.g. the Kard data-race detector
    in :mod:`repro.func.kard`) can identify the violated domain, exactly
    like the PKU bit in the x86 page-fault error code.
    """

    def __init__(self, address: int, access: str, pkey: int, reason: str) -> None:
        super().__init__(
            address,
            access,
            f"protection fault: {access} at {address:#x} (pkey={pkey}): {reason}",
        )
        self.pkey = pkey
        self.reason = reason

"""User-space pKey management mirroring the Linux pkeys(7) API.

``pkey_alloc`` / ``pkey_free`` hand out the 15 application-usable keys
(pKey 0 is the default colour of every page).  ``pkey_set`` mirrors
glibc's helper built on RDPKRU/WRPKRU (SSV-C6 of the paper).
"""

from __future__ import annotations

from .pkru import NUM_PKEYS, set_permissions


class PKeyExhausted(Exception):
    """No free protection keys remain (the 16-key hardware limit)."""


class PKeyAllocator:
    """Tracks which of the 16 hardware pKeys are allocated."""

    def __init__(self) -> None:
        # pKey 0 is implicitly allocated as the default.
        self._allocated = {0}
        # Churn telemetry (exported as the ``mpk.pkey.*`` metrics): a
        # high alloc/free rate signals key virtualisation pressure.
        self.allocs = 0
        self.frees = 0

    def alloc(self) -> int:
        """Allocate and return the lowest free pKey.

        Raises :class:`PKeyExhausted` when all 16 keys are in use,
        the situation motivating libmpk/VDom-style virtualisation
        (see :mod:`repro.mpk.domains`).
        """
        for pkey in range(NUM_PKEYS):
            if pkey not in self._allocated:
                self._allocated.add(pkey)
                self.allocs += 1
                return pkey
        raise PKeyExhausted("all 16 protection keys are allocated")

    def free(self, pkey: int) -> None:
        if pkey == 0:
            raise ValueError("pkey 0 is the default key and cannot be freed")
        if pkey not in self._allocated:
            raise ValueError(f"pkey {pkey} is not allocated")
        self._allocated.discard(pkey)
        self.frees += 1

    def is_allocated(self, pkey: int) -> bool:
        return pkey in self._allocated

    @property
    def allocated(self) -> frozenset:
        return frozenset(self._allocated)

    @property
    def free_count(self) -> int:
        return NUM_PKEYS - len(self._allocated)


def pkey_set(pkru: int, pkey: int, access_disable: bool, write_disable: bool) -> int:
    """glibc-style read-modify-write of one pKey's permissions.

    The real implementation is RDPKRU + mask + WRPKRU; here we return
    the new PKRU value for the caller to write.
    """
    return set_permissions(pkru, pkey, access_disable, write_disable)

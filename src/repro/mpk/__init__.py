"""Memory Protection Keys: PKRU, permission checks, pKey management."""

from .faults import AlignmentFault, MemoryFault, ProtectionFault, SegmentationFault
from .permissions import READ, WRITE, access_allowed, check_access
from .pkey_allocator import PKeyAllocator, PKeyExhausted, pkey_set
from .pkru import (
    NUM_PKEYS,
    PKRU_ALL_DISABLED_EXCEPT_0,
    PKRU_ALL_ENABLED,
    PKRU_MASK,
    access_disabled,
    ad_bit,
    describe,
    make_pkru,
    set_permissions,
    wd_bit,
    write_disabled,
)

__all__ = [
    "AlignmentFault",
    "MemoryFault",
    "NUM_PKEYS",
    "PKRU_ALL_DISABLED_EXCEPT_0",
    "PKRU_ALL_ENABLED",
    "PKRU_MASK",
    "PKeyAllocator",
    "PKeyExhausted",
    "ProtectionFault",
    "READ",
    "SegmentationFault",
    "WRITE",
    "access_allowed",
    "access_disabled",
    "ad_bit",
    "check_access",
    "describe",
    "make_pkru",
    "pkey_set",
    "set_permissions",
    "wd_bit",
    "write_disabled",
]

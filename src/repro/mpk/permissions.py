"""Combined page-table + PKRU permission resolution (paper Fig. 1).

The access check enforces *the most strict* of the PTE's RWX bits and
the PKRU {AD, WD} pair selected by the page's pKey, mirroring the MPK
protection-check step described in SSII-A.
"""

from __future__ import annotations

from .faults import ProtectionFault
from .pkru import access_disabled, write_disabled

READ = "read"
WRITE = "write"
ACCESS_KINDS = (READ, WRITE)


def check_access(
    address: int,
    access: str,
    pkey: int,
    pte_readable: bool,
    pte_writable: bool,
    pkru: int,
) -> None:
    """Raise :class:`ProtectionFault` unless *access* is permitted.

    Arguments mirror what the TLB hands back on a hit: the page's RW
    bits and its pKey; *pkru* is the (architectural) PKRU value.
    """
    if access not in ACCESS_KINDS:
        raise ValueError(f"unknown access kind {access!r}")
    if not pte_readable:
        raise ProtectionFault(address, access, pkey, "page not readable")
    if access == WRITE and not pte_writable:
        raise ProtectionFault(address, access, pkey, "page not writable")
    if access_disabled(pkru, pkey):
        raise ProtectionFault(address, access, pkey, "PKRU access-disable")
    if access == WRITE and write_disabled(pkru, pkey):
        raise ProtectionFault(address, access, pkey, "PKRU write-disable")


def access_allowed(
    address: int,
    access: str,
    pkey: int,
    pte_readable: bool,
    pte_writable: bool,
    pkru: int,
) -> bool:
    """Non-raising variant of :func:`check_access`."""
    try:
        check_access(address, access, pkey, pte_readable, pte_writable, pkru)
    except ProtectionFault:
        return False
    return True

"""The PKRU register: 16 protection keys x {Access-Disable, Write-Disable}.

Bit layout follows the Intel SDM: for pKey *k*, bit ``2k`` is AD
(Access-Disable) and bit ``2k + 1`` is WD (Write-Disable).  If access is
allowed, read access is allowed irrespective of WD (paper SSII-A).
"""

from __future__ import annotations

NUM_PKEYS = 16
PKRU_BITS = 2 * NUM_PKEYS
PKRU_MASK = (1 << PKRU_BITS) - 1

#: PKRU value with every permission granted.
PKRU_ALL_ENABLED = 0

#: PKRU value with access disabled for every pKey except pKey 0.
PKRU_ALL_DISABLED_EXCEPT_0 = PKRU_MASK & ~0b11


def ad_bit(pkey: int) -> int:
    """Bit position of the Access-Disable bit for *pkey*."""
    _check_pkey(pkey)
    return 2 * pkey


def wd_bit(pkey: int) -> int:
    """Bit position of the Write-Disable bit for *pkey*."""
    _check_pkey(pkey)
    return 2 * pkey + 1


def access_disabled(pkru: int, pkey: int) -> bool:
    """True when *pkru* forbids any access to pages coloured *pkey*."""
    return bool(pkru >> ad_bit(pkey) & 1)


def write_disabled(pkru: int, pkey: int) -> bool:
    """True when *pkru* forbids writes to pages coloured *pkey*."""
    return bool(pkru >> wd_bit(pkey) & 1)


def set_permissions(
    pkru: int, pkey: int, access_disable: bool, write_disable: bool
) -> int:
    """Return *pkru* with the {AD, WD} pair for *pkey* replaced."""
    _check_pkey(pkey)
    cleared = pkru & ~(0b11 << (2 * pkey))
    bits = (int(write_disable) << 1 | int(access_disable)) << (2 * pkey)
    return (cleared | bits) & PKRU_MASK


def make_pkru(disabled=(), write_disabled=()) -> int:
    """Build a PKRU value from iterables of disabled pKeys."""
    pkru = 0
    for pkey in disabled:
        pkru |= 1 << ad_bit(pkey)
    for pkey in write_disabled:
        pkru |= 1 << wd_bit(pkey)
    return pkru


def describe(pkru: int) -> str:
    """Human-readable rendering of a PKRU value."""
    parts = []
    for pkey in range(NUM_PKEYS):
        ad = access_disabled(pkru, pkey)
        wd = write_disabled(pkru, pkey)
        if ad or wd:
            flags = ("AD" if ad else "") + ("WD" if wd else "")
            parts.append(f"pkey{pkey}:{flags}")
    return "PKRU[" + (", ".join(parts) if parts else "all-enabled") + "]"


def _check_pkey(pkey: int) -> None:
    if not 0 <= pkey < NUM_PKEYS:
        raise ValueError(f"pkey {pkey} out of range [0, {NUM_PKEYS})")

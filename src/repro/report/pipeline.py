"""The ``repro report`` driver: regenerate, summarize, ledger.

One :class:`ArtifactSpec` per final artifact.  ``figure`` specs are
*repeatable*: the pipeline regenerates them ``repeats`` times with
seed-varied workloads (:func:`repro.workloads.seed_variant` — repeat 0
uses the canonical labels, so its run-cache keys are byte-identical to
``repro reproduce``'s) and summarizes every reported number with a
seeded-bootstrap 95% CI across the repeats.  ``static`` specs —
tables, the hardware-cost summary, the Flush+Reload traces — are fully
determined by the code, so they are generated once and pinned by
content SHA-256.

Every simulation flows through :func:`repro.harness.api.execute` (via
``execute_batch``), so an immediate warm rerun resolves entirely from
the content-addressed run cache: zero new simulations, zero new cache
misses — the property the warm-cache test asserts.  A
:class:`RunRecorder` subscribes to the harness run observers for the
duration of each artifact's generation and maps it to the exact
:class:`~repro.report.ledger.RunRef`\\ s behind it.
"""

from __future__ import annotations

import dataclasses
import datetime
import hashlib
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..harness.api import RunResult, add_run_observer, remove_run_observer
from ..obs.exporters import write_jsonl
from ..obs.snapshot import MetricsSnapshot
from ..perf.runcache import code_fingerprint, default_cache
from ..workloads.profiles import labels as all_labels
from ..workloads.profiles import seed_variant
from .bootstrap import derive_seed, summarize_series
from .ledger import ArtifactEntry, Manifest, MetricStat, RunRef
from .provenance import host_info, repro_knobs
from .writer import atomic_write_text

#: Default relative tolerance for figure metrics in ``report diff``.
#: The simulator is deterministic, so at identical budgets and seeds a
#: regenerated value matches the baseline exactly; 5% is the slack for
#: *intentional* microarchitecture changes small enough not to count
#: as regressions of the reproduction.
DEFAULT_FIGURE_TOLERANCE = 0.05


class RunRecorder:
    """Collects every run observed while generating one artifact.

    Subscribes to the harness run observers on ``__enter__``; results
    are keyed by run-cache key, so the same run reported from both
    ``execute()`` and the batch scheduler's settle path is recorded
    once.  Uncacheable runs (no key) are kept in arrival order.
    """

    def __init__(self) -> None:
        self.runs: Dict[str, RunResult] = {}
        self.uncached: List[RunResult] = []

    def __enter__(self) -> "RunRecorder":
        add_run_observer(self._observe)
        return self

    def __exit__(self, *exc_info) -> None:
        remove_run_observer(self._observe)

    def _observe(self, key: Optional[str], result: RunResult) -> None:
        if key is None and result.provenance is not None:
            key = result.provenance.cache_key
        if key is None:
            self.uncached.append(result)
        else:
            self.runs[key] = result

    @staticmethod
    def _ref(key: Optional[str], result: RunResult, repeat: int) -> RunRef:
        provenance = result.provenance
        return RunRef(
            cache_key=key,
            label=result.metadata.label,
            policy=result.metadata.policy.value,
            mode=result.metadata.mode.value,
            repeat=repeat,
            from_cache=(
                provenance.from_cache if provenance is not None else False
            ),
            wall_seconds=(
                provenance.wall_seconds if provenance is not None else 0.0
            ),
        )

    def refs(self, repeat: int) -> List[RunRef]:
        """One :class:`RunRef` per recorded run, cache-keyed first."""
        return [
            self._ref(key, result, repeat)
            for key, result in sorted(self.runs.items())
        ] + [self._ref(None, result, repeat) for result in self.uncached]

    def snapshots(self) -> List[MetricsSnapshot]:
        """The non-None telemetry snapshots of the recorded runs."""
        ordered = [result for _key, result in sorted(self.runs.items())]
        ordered += self.uncached
        return [
            result.metrics for result in ordered
            if result.metrics is not None
        ]


#: ``generate(workloads, instructions) -> (metrics, text)`` where
#: *workloads* is the (possibly seed-varied) identifier list, or None
#: for static specs.
GenerateFn = Callable[
    [Optional[Sequence[object]], Optional[int]],
    Tuple[Dict[str, float], str],
]


@dataclasses.dataclass(frozen=True)
class ArtifactSpec:
    """How one final artifact is regenerated and summarized."""

    name: str
    filename: str
    kind: str                 # "figure" (repeatable) | "static"
    generate: GenerateFn
    #: Base workload identifiers seed-varied per repeat; None for
    #: static specs (and figure specs with no workload axis).
    labels: Optional[Tuple[str, ...]] = None
    tolerance: float = DEFAULT_FIGURE_TOLERANCE


def _statistic_for(name: str) -> str:
    """Cross-repeat aggregation: geomean rows stay geomeans."""
    return "geomean" if "[geomean]" in name else "mean"


# -- per-artifact generators -----------------------------------------------
#
# Imported lazily inside each generator: the experiment functions pull
# in the whole harness, and this module is reachable from
# ``repro.report`` consumers that never generate anything.


def _gen_fig3(workloads, instructions):
    from ..harness import fig3_serialization_study, render_table

    rows = fig3_serialization_study(
        labels=workloads, instructions=instructions
    )
    metrics = {f"speedup[{row.workload}]": row.speedup for row in rows}
    metrics["rename_stall_fraction[average]"] = rows[-1].rename_stall_fraction
    return metrics, render_table(rows, title="Fig. 3")


def _gen_fig4(workloads, instructions):
    from ..harness import fig4_overhead_breakdown, render_table

    rows = fig4_overhead_breakdown(
        labels=workloads, instructions=instructions
    )
    metrics = {
        f"total_overhead[{row.workload}]": row.total_overhead
        for row in rows
    }
    metrics["compiler_overhead[average]"] = rows[-1].compiler_overhead
    metrics["serialization_overhead[average]"] = (
        rows[-1].serialization_overhead
    )
    return metrics, render_table(rows, title="Fig. 4")


def _gen_fig9(workloads, instructions):
    from ..harness import fig9_normalized_ipc, render_table

    rows = fig9_normalized_ipc(labels=workloads, instructions=instructions)
    metrics = {}
    for row in rows:
        metrics[f"nonsecure_specmpk[{row.workload}]"] = row.nonsecure_specmpk
        metrics[f"specmpk[{row.workload}]"] = row.specmpk
    return metrics, render_table(rows, title="Fig. 9")


def _gen_fig10(workloads, instructions):
    from ..harness import fig10_wrpkru_frequency, render_bars

    rows = fig10_wrpkru_frequency(
        labels=workloads, instructions=instructions
    )
    metrics = {
        f"wrpkru_per_kilo[{row.workload}]": row.wrpkru_per_kilo
        for row in rows
    }
    text = render_bars(
        [(row.workload, row.wrpkru_per_kilo) for row in rows],
        title="Fig. 10",
    )
    return metrics, text


def _gen_fig11(workloads, instructions):
    from ..harness import fig11_rob_pkru_sensitivity, render_table

    rows = fig11_rob_pkru_sensitivity(
        labels=workloads, instructions=instructions
    )
    metrics = {}
    for row in rows:
        for column, value in row.specmpk_by_size:
            metrics[f"{column}[{row.workload}]"] = value
        metrics[f"nonsecure[{row.workload}]"] = row.nonsecure
    return metrics, render_table(rows, title="Fig. 11")


def _gen_mprotect(workloads, instructions):
    from ..harness import motivation_mprotect_vs_mpk, render_table

    rows = motivation_mprotect_vs_mpk(
        labels=workloads, instructions=instructions
    )
    metrics = {
        f"mprotect_slowdown[{row['workload']}]": row["mprotect_slowdown"]
        for row in rows
    }
    return metrics, render_table(rows, title="mprotect vs MPK")


def _gen_ablation_tlb(workloads, instructions):
    from ..harness import ablation_tlb_deferral, render_table

    rows = ablation_tlb_deferral(
        labels=workloads, instructions=instructions
    )
    metrics = {
        f"cost[{row['workload']}]": row["cost"] for row in rows
    }
    return metrics, render_table(rows, title="TLB-deferral ablation")


def _gen_table1(workloads, instructions):
    from ..analysis.isolation_taxonomy import table_i, verify_probes
    from ..harness import render_table

    probes = verify_probes()
    text = render_table(table_i(), title="Table I")
    verified = sum(1 for verdict in probes.values() if verdict)
    text += f"\n\nprobes: {verified}/{len(probes)} verified"
    return {}, text


def _gen_table2(workloads, instructions):
    from ..harness import render_table, table2_source_operands

    return {}, render_table(table2_source_operands(), title="Table II")


def _gen_table3(workloads, instructions):
    from ..harness import render_table, table3_configuration

    return {}, render_table(table3_configuration(), title="Table III")


def _gen_hw(workloads, instructions):
    from ..harness import section8_hardware_overhead

    data = section8_hardware_overhead()
    return {}, (
        f"total: {data['total_bytes']:.1f} B "
        f"({data['l1d_fraction']:.2%} of L1D)"
    )


def _gen_fig13(workloads, instructions):
    from ..harness import fig13_flush_reload, render_latency_series

    data = fig13_flush_reload()
    text = (
        render_latency_series(data["nonsecure_latencies"],
                              title="NonSecure:")
        + "\n"
        + render_latency_series(data["specmpk_latencies"],
                                title="SpecMPK:")
        + f"\n\nnonsecure leaked: {data['nonsecure_leaked']}"
        + f"\nspecmpk leaked: {data['specmpk_leaked']}"
    )
    return {}, text


#: Default label sets mirrored from the experiment functions, spelled
#: out here so the pipeline can seed-vary them per repeat.
_FIG11_LABELS = (
    "500.perlbench_r (SS)", "502.gcc_r (SS)", "520.omnetpp_r (SS)",
    "531.deepsjeng_r (SS)", "541.leela_r (SS)", "453.povray (CPI)",
    "471.omnetpp (CPI)",
)
_MPROTECT_LABELS = (
    "520.omnetpp_r (SS)", "500.perlbench_r (SS)",
    "531.deepsjeng_r (SS)", "471.omnetpp (CPI)",
    "453.povray (CPI)", "557.xz_r (SS)",
)
_ABLATION_LABELS = (
    "505.mcf_r (SS)", "520.omnetpp_r (SS)", "557.xz_r (SS)",
)


def _specs() -> Tuple[ArtifactSpec, ...]:
    every = tuple(all_labels())
    return (
        ArtifactSpec("fig3", "fig3_serialization.txt", "figure",
                     _gen_fig3, labels=every),
        ArtifactSpec("fig4", "fig4_breakdown.txt", "figure",
                     _gen_fig4, labels=every),
        ArtifactSpec("fig9", "fig9_normalized_ipc.txt", "figure",
                     _gen_fig9, labels=every),
        ArtifactSpec("fig10", "fig10_wrpkru_frequency.txt", "figure",
                     _gen_fig10, labels=every),
        ArtifactSpec("fig11", "fig11_robpkru_sensitivity.txt", "figure",
                     _gen_fig11, labels=_FIG11_LABELS),
        ArtifactSpec("mprotect", "motivation_mprotect.txt", "figure",
                     _gen_mprotect, labels=_MPROTECT_LABELS),
        ArtifactSpec("ablation_tlb", "ablation_tlb_stall.txt", "figure",
                     _gen_ablation_tlb, labels=_ABLATION_LABELS),
        ArtifactSpec("fig13", "fig13_flush_reload.txt", "static",
                     _gen_fig13, tolerance=0.0),
        ArtifactSpec("table1", "table1_isolation.txt", "static",
                     _gen_table1, tolerance=0.0),
        ArtifactSpec("table2", "table2_operands.txt", "static",
                     _gen_table2, tolerance=0.0),
        ArtifactSpec("table3", "table3_configuration.txt", "static",
                     _gen_table3, tolerance=0.0),
        ArtifactSpec("hw", "hw_overhead.txt", "static",
                     _gen_hw, tolerance=0.0),
    )


ARTIFACTS: Tuple[ArtifactSpec, ...] = _specs()


def artifact_names() -> List[str]:
    return [spec.name for spec in ARTIFACTS]


@dataclasses.dataclass
class ReportConfig:
    """Everything one ``repro report all`` invocation is parameterized by."""

    out: Path = Path("results/final")
    repeats: int = 3
    #: Instruction budget per point; None = the harness default
    #: (``measurement_budget()``, i.e. ``REPRO_SCALE``-scaled 12k).
    instructions: Optional[int] = None
    #: Bootstrap base seed — per-artifact, per-metric RNG seeds derive
    #: from it, so the same seed always reproduces the same CI bounds.
    seed: int = 0
    #: Artifact-name subset; None regenerates everything.
    only: Optional[Set[str]] = None

    def selected(self) -> List[ArtifactSpec]:
        if self.only is None:
            return list(ARTIFACTS)
        known = {spec.name for spec in ARTIFACTS}
        unknown = self.only - known
        if unknown:
            raise ValueError(
                f"unknown artifact(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return [spec for spec in ARTIFACTS if spec.name in self.only]


def _generate_artifact(
    spec: ArtifactSpec,
    config: ReportConfig,
    snapshots: List[MetricsSnapshot],
) -> ArtifactEntry:
    series: Dict[str, List[float]] = {}
    runs: List[RunRef] = []
    canonical_text = ""
    repeats = config.repeats if spec.kind == "figure" else 1
    for repeat in range(repeats):
        workloads = None
        if spec.labels is not None:
            workloads = [
                seed_variant(label, repeat) for label in spec.labels
            ]
        with RunRecorder() as recorder:
            metrics, text = spec.generate(workloads, config.instructions)
        if repeat == 0:
            # Repeat 0 runs the canonical seeds — its rendering IS the
            # published artifact; later repeats only feed the CIs.
            canonical_text = text
        for name, value in metrics.items():
            series.setdefault(name, []).append(float(value))
        runs.extend(recorder.refs(repeat))
        snapshots.extend(recorder.snapshots())
    atomic_write_text(config.out / spec.filename, canonical_text + "\n")
    cis = summarize_series(
        series,
        derive_seed(config.seed, spec.name),
        statistics={name: _statistic_for(name) for name in series},
    )
    return ArtifactEntry(
        name=spec.name,
        path=spec.filename,
        kind=spec.kind,
        content_sha256=hashlib.sha256(
            canonical_text.encode()
        ).hexdigest(),
        repeats=repeats,
        metrics={
            name: MetricStat(name, ci, tolerance=spec.tolerance)
            for name, ci in cis.items()
        },
        runs=runs,
    )


def generate_report(
    config: ReportConfig,
    echo: Optional[Callable[[str], None]] = None,
) -> Tuple[Manifest, Dict[str, int]]:
    """Regenerate the selected artifacts and write the full ledger.

    Produces, under ``config.out``: every artifact file,
    ``manifest.json`` (machine-readable), ``manifest.md`` (rendered)
    and ``metrics.jsonl`` (one telemetry snapshot per underlying run).
    Returns the manifest plus the run-cache hit/miss deltas observed —
    a warm rerun reports zero misses.
    """
    specs = config.selected()
    cache = default_cache()
    hits_before, misses_before = cache.hits, cache.misses
    manifest = Manifest(
        code_fingerprint=code_fingerprint(),
        seed=config.seed,
        repeats=config.repeats,
        instructions=config.instructions,
        knobs=repro_knobs(),
        host=host_info(),
        generated=datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
    )
    snapshots: List[MetricsSnapshot] = []
    for spec in specs:
        entry = _generate_artifact(spec, config, snapshots)
        manifest.add(entry)
        if echo is not None:
            echo(
                f"[{entry.name}] {entry.path}: "
                f"{len(entry.metrics)} metric(s), "
                f"{len(entry.runs)} run(s)"
            )
    write_jsonl(config.out / "metrics.jsonl", snapshots)
    manifest.save(config.out / "manifest.json")
    from .ledger import render_manifest_md

    atomic_write_text(
        config.out / "manifest.md", render_manifest_md(manifest) + "\n"
    )
    counters = {
        "artifacts": len(specs),
        "cache_hits": cache.hits - hits_before,
        "cache_misses": cache.misses - misses_before,
        "snapshots": len(snapshots),
    }
    return manifest, counters


def load_or_fail(path: Union[str, Path]) -> Manifest:
    """Load a manifest, raising ``FileNotFoundError`` with guidance."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(
            f"{path} not found — generate it with `repro report all`"
        )
    return Manifest.load(path)

"""Atomic text-artifact writes (tmp + ``os.replace``).

Every ``figN_*``/``tableN_*`` text artifact — whether written by
``repro reproduce``, ``repro report`` or the benchmark suite — goes
through :func:`atomic_write_text`, the same write discipline the spool
and the run cache already use: the content lands in a hidden sibling
temp file and is renamed into place in one ``os.replace``, so an
interrupted regeneration can never leave a truncated artifact behind
for the next reader (or the manifest) to trust.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write *text* to *path* atomically; parents are created.

    The temp name embeds the pid so concurrent writers (two benchmark
    shards regenerating the same artifact) never collide on the temp
    file; the last ``os.replace`` wins with a complete file either way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    temp.write_text(text)
    os.replace(temp, path)
    return path

"""Results observability: provenance ledger, bootstrap CIs, baseline diff.

``repro.report`` is the layer that makes the *scientific output*
auditable the way PRs 1 and 5 made the simulator observable:

* :mod:`~repro.report.provenance` — a :class:`ProvenanceRecord` stamped
  on every :class:`~repro.harness.api.RunResult` by ``execute()``;
* :mod:`~repro.report.ledger` — the :class:`Manifest` mapping each
  ``figN_*``/``tableN_*``/``ablation_*`` artifact to the exact
  run-cache keys, code fingerprint and knobs behind it;
* :mod:`~repro.report.bootstrap` — seeded percentile-bootstrap 95%
  confidence intervals over seed-varied repeats;
* :mod:`~repro.report.diff` — per-metric-tolerance comparison against
  the checked-in baseline (the CI smoke tier);
* :mod:`~repro.report.pipeline` — the ``repro report`` driver that
  regenerates every artifact through ``execute_batch`` and writes
  ``results/final/`` (imported lazily: the pipeline builds on the
  harness, and the harness imports this package for provenance).
"""

from .bootstrap import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    BootstrapCI,
    bootstrap_ci,
    derive_seed,
    geomean,
    summarize_series,
)
from .diff import DiffItem, DiffReport, diff_manifests, within_tolerance
from .ledger import (
    MANIFEST_VERSION,
    ArtifactEntry,
    Manifest,
    MetricStat,
    RunRef,
    render_manifest_md,
)
from .provenance import (
    ProvenanceRecord,
    host_info,
    make_record,
    repro_knobs,
)
from .writer import atomic_write_text

#: Pipeline names resolved lazily via __getattr__ — the pipeline
#: imports the harness, which imports this package for provenance, so
#: a module-level import here would be circular.
_PIPELINE_NAMES = (
    "ARTIFACTS",
    "ArtifactSpec",
    "ReportConfig",
    "RunRecorder",
    "artifact_names",
    "generate_report",
)

__all__ = [
    "ARTIFACTS",
    "ArtifactEntry",
    "ArtifactSpec",
    "BootstrapCI",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_RESAMPLES",
    "DiffItem",
    "DiffReport",
    "MANIFEST_VERSION",
    "Manifest",
    "MetricStat",
    "ProvenanceRecord",
    "ReportConfig",
    "RunRecorder",
    "RunRef",
    "artifact_names",
    "atomic_write_text",
    "bootstrap_ci",
    "derive_seed",
    "diff_manifests",
    "generate_report",
    "geomean",
    "host_info",
    "make_record",
    "render_manifest_md",
    "repro_knobs",
    "summarize_series",
    "within_tolerance",
]


def __getattr__(name: str):
    if name in _PIPELINE_NAMES:
        from . import pipeline

        return getattr(pipeline, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

"""The provenance ledger: artifacts mapped to the runs behind them.

A :class:`Manifest` is the machine-readable record ``repro report``
writes alongside the regenerated ``results/final/`` artifacts.  For
every ``figN_*``/``tableN_*``/``ablation_*`` artifact it holds:

* a :class:`RunRef` per underlying simulation — the run-cache key,
  workload label, policy, whether the result was memoized, and its
  wall time — so "which runs produced figure 9" resolves to concrete
  content-addressed cache entries;
* a :class:`MetricStat` per reported number — the bootstrap
  point/lo/hi plus the per-metric diff tolerance;
* the artifact file's SHA-256, so the rendered text can be matched to
  the ledger entry byte-for-byte.

The manifest header pins the code fingerprint, resolved ``REPRO_*``
knobs, host info and report seed shared by every entry.  ``to_json`` /
``from_json`` round-trip exactly (property-tested in
``tests/report/test_ledger.py``); :func:`render_manifest_md` renders
the human-readable ``results/final/manifest.md`` view.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from .bootstrap import BootstrapCI

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


@dataclasses.dataclass(frozen=True)
class RunRef:
    """One simulation behind an artifact, by content-addressed identity."""

    cache_key: Optional[str]
    label: str
    policy: str
    mode: str
    repeat: int = 0
    from_cache: bool = False
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "cache_key": self.cache_key,
            "label": self.label,
            "policy": self.policy,
            "mode": self.mode,
            "repeat": self.repeat,
            "from_cache": self.from_cache,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRef":
        return cls(
            cache_key=data.get("cache_key"),
            label=str(data.get("label", "")),
            policy=str(data.get("policy", "")),
            mode=str(data.get("mode", "")),
            repeat=int(data.get("repeat", 0)),
            from_cache=bool(data.get("from_cache", False)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )


@dataclasses.dataclass(frozen=True)
class MetricStat:
    """One reported number with its interval and diff tolerance."""

    name: str
    ci: BootstrapCI
    #: Relative tolerance used by ``repro report diff`` (0.0 = exact).
    tolerance: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ci": self.ci.as_dict(),
            "tolerance": self.tolerance,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricStat":
        return cls(
            name=str(data["name"]),
            ci=BootstrapCI.from_dict(data["ci"]),
            tolerance=float(data.get("tolerance", 0.0)),
        )


@dataclasses.dataclass
class ArtifactEntry:
    """Ledger entry for one regenerated results artifact."""

    name: str                         # e.g. "fig9"
    path: str                         # artifact file, relative to out dir
    kind: str                         # "figure" | "table" | "static"
    content_sha256: str
    repeats: int = 1
    metrics: Dict[str, MetricStat] = dataclasses.field(default_factory=dict)
    runs: List[RunRef] = dataclasses.field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "path": self.path,
            "kind": self.kind,
            "content_sha256": self.content_sha256,
            "repeats": self.repeats,
            "metrics": {
                name: stat.as_dict()
                for name, stat in sorted(self.metrics.items())
            },
            "runs": [ref.as_dict() for ref in self.runs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ArtifactEntry":
        return cls(
            name=str(data["name"]),
            path=str(data["path"]),
            kind=str(data.get("kind", "figure")),
            content_sha256=str(data.get("content_sha256", "")),
            repeats=int(data.get("repeats", 1)),
            metrics={
                name: MetricStat.from_dict(stat)
                for name, stat in data.get("metrics", {}).items()
            },
            runs=[RunRef.from_dict(ref) for ref in data.get("runs", [])],
        )


@dataclasses.dataclass
class Manifest:
    """Everything ``repro report`` produced, in one auditable document."""

    code_fingerprint: str
    seed: int
    repeats: int
    instructions: Optional[int]
    knobs: Dict[str, str] = dataclasses.field(default_factory=dict)
    host: Dict[str, object] = dataclasses.field(default_factory=dict)
    artifacts: Dict[str, ArtifactEntry] = dataclasses.field(
        default_factory=dict
    )
    generated: str = ""
    version: int = MANIFEST_VERSION

    def add(self, entry: ArtifactEntry) -> None:
        self.artifacts[entry.name] = entry

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "generated": self.generated,
            "code_fingerprint": self.code_fingerprint,
            "seed": self.seed,
            "repeats": self.repeats,
            "instructions": self.instructions,
            "knobs": dict(self.knobs),
            "host": dict(self.host),
            "artifacts": {
                name: entry.as_dict()
                for name, entry in sorted(self.artifacts.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Manifest":
        return cls(
            code_fingerprint=str(data.get("code_fingerprint", "")),
            seed=int(data.get("seed", 0)),
            repeats=int(data.get("repeats", 1)),
            instructions=(
                None if data.get("instructions") is None
                else int(data["instructions"])
            ),
            knobs=dict(data.get("knobs", {})),
            host=dict(data.get("host", {})),
            artifacts={
                name: ArtifactEntry.from_dict(entry)
                for name, entry in data.get("artifacts", {}).items()
            },
            generated=str(data.get("generated", "")),
            version=int(data.get("version", MANIFEST_VERSION)),
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        from .writer import atomic_write_text

        return atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Manifest":
        return cls.from_json(Path(path).read_text())


def _format_ci(stat: MetricStat) -> str:
    ci = stat.ci
    if ci.lo == ci.hi:
        return f"{ci.mean:.4f}"
    return f"{ci.mean:.4f} [{ci.lo:.4f}, {ci.hi:.4f}]"


def render_manifest_md(manifest: Manifest) -> str:
    """The human-readable ``results/final/manifest.md`` view."""
    lines = [
        "# Results ledger",
        "",
        "Every artifact below maps to the exact runs, code version and",
        "knobs that produced it.  Regenerate with `repro report all`;",
        "verify with `repro report diff`.",
        "",
        f"- **generated**: {manifest.generated or 'n/a'}",
        f"- **code fingerprint**: `{manifest.code_fingerprint}`",
        f"- **report seed**: {manifest.seed}",
        f"- **repeats**: {manifest.repeats}",
        f"- **instructions/point**: "
        f"{manifest.instructions if manifest.instructions else 'default'}",
        f"- **host**: {manifest.host.get('cpu_model', 'unknown')} "
        f"({manifest.host.get('cpu_count', '?')} cores), "
        f"Python {manifest.host.get('python', '?')}",
    ]
    if manifest.knobs:
        knobs = ", ".join(
            f"`{name}={value}`"
            for name, value in sorted(manifest.knobs.items())
        )
        lines.append(f"- **knobs**: {knobs}")
    else:
        lines.append("- **knobs**: all defaults")
    lines.append("")
    for name in sorted(manifest.artifacts):
        entry = manifest.artifacts[name]
        lines.append(f"## {entry.name}")
        lines.append("")
        lines.append(f"- file: `{entry.path}`")
        lines.append(f"- sha256: `{entry.content_sha256}`")
        lines.append(f"- kind: {entry.kind}, repeats: {entry.repeats}")
        fresh = sum(1 for ref in entry.runs if not ref.from_cache)
        lines.append(
            f"- runs: {len(entry.runs)} "
            f"({fresh} simulated, {len(entry.runs) - fresh} memoized)"
        )
        if entry.metrics:
            lines.append("")
            lines.append(
                "| metric | value [95% CI] | statistic | tolerance |"
            )
            lines.append("|---|---|---|---|")
            for metric_name in sorted(entry.metrics):
                stat = entry.metrics[metric_name]
                lines.append(
                    f"| {metric_name} | {_format_ci(stat)} "
                    f"| {stat.ci.statistic} | {stat.tolerance:g} |"
                )
        if entry.runs:
            lines.append("")
            lines.append("<details><summary>run-cache keys</summary>")
            lines.append("")
            for ref in entry.runs:
                key = ref.cache_key or "(uncacheable)"
                lines.append(
                    f"- `{key}` — {ref.label} / {ref.policy} / "
                    f"{ref.mode} (repeat {ref.repeat})"
                )
            lines.append("")
            lines.append("</details>")
        lines.append("")
    return "\n".join(lines)

"""Seeded bootstrap confidence intervals for reported means/geomeans.

Every figure number the repro reports was, before this module, a
single-shot point estimate.  ``repro report`` regenerates each figure
over N seed-varied repeats and summarises every reported metric with a
percentile-bootstrap 95% confidence interval:

* **Seeded**: the resampling RNG is ``random.Random(seed)`` where the
  seed derives deterministically from the report seed and the metric
  name, so the same inputs always produce bit-identical bounds — CI can
  diff manifests across runs without statistical noise in the
  *methodology* itself.
* **Percentile bootstrap**: resample the repeat values with
  replacement ``resamples`` times, compute the statistic (mean or
  geomean) of each resample, and take the empirical 2.5%/97.5%
  quantiles.  With the handful of repeats a simulation budget allows,
  the percentile method is the standard, assumption-free choice.
* **Edge cases are explicit**: a single repeat yields a degenerate
  interval (``lo == mean == hi``) rather than a crash, and a
  zero-variance series collapses the same way — both are asserted by
  ``tests/report/test_bootstrap.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import random
from typing import Dict, Iterable, List, Optional, Sequence

#: Default resample count; large enough that the 2.5%/97.5% quantiles
#: are stable, small enough to be negligible next to one simulation.
DEFAULT_RESAMPLES = 2_000
DEFAULT_CONFIDENCE = 0.95


def mean(values: Sequence[float]) -> float:
    return math.fsum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Log-space geometric mean (0.0 if any value is 0)."""
    if any(value == 0.0 for value in values):
        return 0.0
    return math.exp(
        math.fsum(math.log(value) for value in values) / len(values)
    )


_STATISTICS = {"mean": mean, "geomean": geomean}


@dataclasses.dataclass(frozen=True)
class BootstrapCI:
    """One summarised metric: point estimate plus interval bounds."""

    mean: float
    lo: float
    hi: float
    #: The repeat values the interval was computed from, in repeat
    #: order (repeat 0 = base seeds, the canonical figure value).
    values: tuple
    statistic: str = "mean"
    confidence: float = DEFAULT_CONFIDENCE

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def as_dict(self) -> Dict[str, object]:
        return {
            "mean": self.mean,
            "lo": self.lo,
            "hi": self.hi,
            "values": list(self.values),
            "statistic": self.statistic,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BootstrapCI":
        return cls(
            mean=float(data["mean"]),
            lo=float(data["lo"]),
            hi=float(data["hi"]),
            values=tuple(data.get("values", [])),
            statistic=str(data.get("statistic", "mean")),
            confidence=float(data.get("confidence", DEFAULT_CONFIDENCE)),
        )


def derive_seed(base_seed: int, name: str) -> int:
    """A deterministic per-metric RNG seed (stable across processes).

    ``hash(str)`` is salted per process, so the derivation goes through
    SHA-256 instead — the same ``(base_seed, name)`` pair must resample
    identically in a test, the CLI, and CI.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def bootstrap_ci(
    values: Iterable[float],
    seed: int,
    statistic: str = "mean",
    resamples: int = DEFAULT_RESAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
) -> BootstrapCI:
    """Percentile-bootstrap interval over *values* (seeded, exact).

    *statistic* is ``"mean"`` or ``"geomean"``.  A single observation
    or a zero-variance series degenerates to a zero-width interval at
    the point estimate.
    """
    values = tuple(float(value) for value in values)
    if not values:
        raise ValueError("bootstrap_ci needs at least one value")
    stat = _STATISTICS[statistic]
    point = stat(values)
    if len(values) == 1 or max(values) == min(values):
        return BootstrapCI(
            mean=point, lo=point, hi=point, values=values,
            statistic=statistic, confidence=confidence,
        )
    rng = random.Random(seed)
    n = len(values)
    estimates = sorted(
        stat([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = min(resamples - 1, max(0, math.floor(alpha * resamples)))
    hi_index = min(
        resamples - 1, max(0, math.ceil((1.0 - alpha) * resamples) - 1)
    )
    return BootstrapCI(
        mean=point,
        lo=estimates[lo_index],
        hi=estimates[hi_index],
        values=values,
        statistic=statistic,
        confidence=confidence,
    )


def summarize_series(
    series: Dict[str, List[float]],
    seed: int,
    statistics: Optional[Dict[str, str]] = None,
    resamples: int = DEFAULT_RESAMPLES,
    confidence: float = DEFAULT_CONFIDENCE,
) -> Dict[str, BootstrapCI]:
    """Bootstrap every metric series; per-metric seeds derive from
    *seed* and the metric name, so adding a metric never perturbs the
    intervals of its neighbours."""
    statistics = statistics or {}
    return {
        name: bootstrap_ci(
            values,
            derive_seed(seed, name),
            statistic=statistics.get(name, "mean"),
            resamples=resamples,
            confidence=confidence,
        )
        for name, values in series.items()
    }

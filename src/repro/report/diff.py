"""Baseline verification: ``repro report diff``.

Compares a freshly regenerated :class:`~repro.report.ledger.Manifest`
against the checked-in baseline, metric by metric, using the
*baseline's* per-metric tolerances (so loosening a tolerance is a
reviewed baseline change, not something a drifting run can do to
itself).  Static artifacts — tables, hardware-overhead summaries —
carry no metric series and are compared by content SHA-256 instead.

The simulator is deterministic, so at pinned budgets a clean diff
means bit-identical science; a non-zero tolerance exists for metrics
that legitimately move under seed variation when the baseline was
recorded with different repeat seeds.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from .ledger import Manifest


@dataclasses.dataclass(frozen=True)
class DiffItem:
    """One compared value: where it came from and whether it passed."""

    artifact: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    tolerance: float
    ok: bool
    note: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        if self.note:
            return f"[{status}] {self.artifact}/{self.metric}: {self.note}"
        delta = relative_delta(self.baseline, self.current)
        return (
            f"[{status}] {self.artifact}/{self.metric}: "
            f"baseline={self.baseline:.6g} current={self.current:.6g} "
            f"delta={delta:.3%} tol={self.tolerance:g}"
        )


@dataclasses.dataclass
class DiffReport:
    """All comparisons from one ``repro report diff`` invocation."""

    items: List[DiffItem] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items)

    @property
    def failures(self) -> List[DiffItem]:
        return [item for item in self.items if not item.ok]

    def render(self) -> str:
        lines = []
        for item in self.items:
            if not item.ok:
                lines.append(item.describe())
        checked = len(self.items)
        failed = len(self.failures)
        verdict = "clean" if failed == 0 else f"{failed} FAILED"
        lines.append(f"report diff: {checked} checks, {verdict}")
        return "\n".join(lines)


def relative_delta(baseline: Optional[float],
                   current: Optional[float]) -> float:
    """|current - baseline| scaled by |baseline| (absolute near zero)."""
    if baseline is None or current is None:
        return float("inf")
    magnitude = abs(baseline)
    if magnitude < 1e-12:
        return abs(current - baseline)
    return abs(current - baseline) / magnitude


def within_tolerance(baseline: float, current: float,
                     tolerance: float) -> bool:
    if tolerance <= 0.0:
        return baseline == current
    return relative_delta(baseline, current) <= tolerance


def diff_manifests(
    baseline: Manifest,
    current: Manifest,
    only: Optional[Iterable[str]] = None,
) -> DiffReport:
    """Compare *current* against *baseline*, one item per checked value.

    *only* restricts the comparison to the named artifacts (the CI
    smoke tier regenerates a subset); otherwise every baseline artifact
    must be present in *current*.  Artifacts that exist only in
    *current* are recorded as informational passes — adding a figure is
    not a regression, removing one is.
    """
    report = DiffReport()
    names = set(only) if only is not None else set(baseline.artifacts)
    for name in sorted(names):
        base_entry = baseline.artifacts.get(name)
        cur_entry = current.artifacts.get(name)
        if base_entry is None:
            report.items.append(DiffItem(
                artifact=name, metric="-", baseline=None, current=None,
                tolerance=0.0, ok=False,
                note="artifact not present in baseline manifest",
            ))
            continue
        if cur_entry is None:
            report.items.append(DiffItem(
                artifact=name, metric="-", baseline=None, current=None,
                tolerance=0.0, ok=False,
                note="artifact missing from regenerated manifest",
            ))
            continue
        if not base_entry.metrics:
            # Static artifact: the rendered bytes are the contract.
            same = base_entry.content_sha256 == cur_entry.content_sha256
            report.items.append(DiffItem(
                artifact=name, metric="content_sha256",
                baseline=None, current=None, tolerance=0.0, ok=same,
                note="" if same else (
                    f"content hash changed: {base_entry.content_sha256} "
                    f"-> {cur_entry.content_sha256}"
                ),
            ))
            continue
        for metric_name in sorted(base_entry.metrics):
            base_stat = base_entry.metrics[metric_name]
            cur_stat = cur_entry.metrics.get(metric_name)
            if cur_stat is None:
                report.items.append(DiffItem(
                    artifact=name, metric=metric_name,
                    baseline=base_stat.ci.mean, current=None,
                    tolerance=base_stat.tolerance, ok=False,
                    note="metric missing from regenerated manifest",
                ))
                continue
            ok = within_tolerance(
                base_stat.ci.mean, cur_stat.ci.mean, base_stat.tolerance
            )
            report.items.append(DiffItem(
                artifact=name, metric=metric_name,
                baseline=base_stat.ci.mean, current=cur_stat.ci.mean,
                tolerance=base_stat.tolerance, ok=ok,
            ))
    new_names = sorted(set(current.artifacts) - set(baseline.artifacts))
    for name in new_names:
        if only is not None and name not in names:
            continue
        report.items.append(DiffItem(
            artifact=name, metric="-", baseline=None, current=None,
            tolerance=0.0, ok=True,
            note="new artifact (absent from baseline)",
        ))
    return report

"""Run provenance: what produced a result, stamped where it happened.

A :class:`ProvenanceRecord` is attached to every
:class:`~repro.harness.api.RunResult` by
:func:`~repro.harness.api.execute` — the one place every simulation
funnels through — so any result that reaches a figure, a manifest or a
spool payload can answer "which request, which code version, which
knobs, which host, how long".  The record is deliberately *outside*
the cache key: two hosts producing the same deterministic result share
one cache entry while each stamping its own provenance at execution
time.

:func:`host_info` is the shared host-metadata snapshot (CPU model,
core count, Python version, timestamp) also embedded in the
``BENCH_kernel.json``/``BENCH_fullrun.json``-style bench reports, so
host-conditional gates (e.g. the fullrun speedup floor requiring
``min(shards, cpus) >= 4``) are auditable from the artifact alone.
"""

from __future__ import annotations

import dataclasses
import datetime
import os
import platform
import sys
from typing import Dict, Mapping, Optional


def cpu_model() -> str:
    """Best-effort CPU model string (``/proc/cpuinfo``, else platform)."""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def host_info() -> Dict[str, object]:
    """Host metadata for bench reports and provenance records."""
    return {
        "cpu_model": cpu_model(),
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
    }


def repro_knobs() -> Dict[str, str]:
    """The resolved ``REPRO_*`` environment knobs, sorted by name.

    Only explicitly-set variables appear — an empty dict means "all
    defaults", which is itself reproducibility-relevant information.
    """
    return {
        name: value
        for name, value in sorted(os.environ.items())
        if name.startswith("REPRO_")
    }


@dataclasses.dataclass(frozen=True)
class ProvenanceRecord:
    """Where one :class:`~repro.harness.api.RunResult` came from.

    ``cache_key`` is the run's canonical identity (None for uncacheable
    requests — traced runs, pre-built workload objects);
    ``code_fingerprint`` pins the simulator version;  ``knobs`` holds
    the ``REPRO_*`` environment as resolved at execution time;
    ``wall_seconds`` is the simulate-or-lookup wall time observed by
    ``execute()``;  ``from_cache`` distinguishes a memoized return from
    a fresh simulation (the stored record keeps the *original*
    execution's host/knobs/wall time — only the flag flips);
    ``metrics_digest`` points at the run's telemetry snapshot (SHA-256
    over its canonical JSON), letting a manifest or JSONL archive be
    matched to the exact snapshot this result carried.
    """

    cache_key: Optional[str]
    code_fingerprint: str
    knobs: Mapping[str, str]
    host: Mapping[str, object]
    wall_seconds: float
    from_cache: bool = False
    metrics_digest: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "cache_key": self.cache_key,
            "code_fingerprint": self.code_fingerprint,
            "knobs": dict(self.knobs),
            "host": dict(self.host),
            "wall_seconds": self.wall_seconds,
            "from_cache": self.from_cache,
            "metrics_digest": self.metrics_digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ProvenanceRecord":
        return cls(
            cache_key=data.get("cache_key"),
            code_fingerprint=data["code_fingerprint"],
            knobs=dict(data.get("knobs", {})),
            host=dict(data.get("host", {})),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            from_cache=bool(data.get("from_cache", False)),
            metrics_digest=data.get("metrics_digest"),
        )


def metrics_digest(snapshot) -> Optional[str]:
    """SHA-256 over a snapshot's canonical JSON (None for no snapshot)."""
    import hashlib

    if snapshot is None:
        return None
    return hashlib.sha256(snapshot.to_json().encode()).hexdigest()[:20]


def make_record(
    cache_key: Optional[str],
    wall_seconds: float,
    snapshot=None,
    from_cache: bool = False,
) -> ProvenanceRecord:
    """Stamp a record for the run that just finished (or was memoized)."""
    from ..perf.runcache import code_fingerprint

    return ProvenanceRecord(
        cache_key=cache_key,
        code_fingerprint=code_fingerprint(),
        knobs=repro_knobs(),
        host=host_info(),
        wall_seconds=round(wall_seconds, 6),
        from_cache=from_cache,
        metrics_digest=metrics_digest(snapshot),
    )

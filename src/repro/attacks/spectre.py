"""Proof-of-concept transient-execution attacks against speculative WRPKRU.

Three gadget builders mirroring the paper's vulnerability catalogue:

* :func:`build_spectre_v1_poc` — Fig. 12(c) / Listing 1: a mispredicted
  conditional branch transiently executes a WRPKRU that *enables* access
  to the protected page, letting a dependent load chain transmit the
  secret through the cache (measured in Fig. 13).
* :func:`build_spectre_bti_poc` — Fig. 12(d): an indirect call whose
  BTB entry was trained to point at a permission-upgrading gadget.
* :func:`build_speculative_overflow_poc` — SSIII-C: a transient
  Write-Disable -> Write-Enable upgrade lets a squashed store forward a
  corrupted value to a younger load (Kiriansky-style speculative buffer
  overflow), unless forwarding is blocked.

Every builder returns an :class:`AttackProgram` whose ``probe_address``
method maps transmitted values to probe-array addresses, so the
Flush+Reload receiver (:mod:`repro.attacks.flush_reload`) can decode
what leaked.
"""

from __future__ import annotations

from typing import NamedTuple

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import EAX, SP
from ..mpk.pkru import make_pkru

#: Probe-array stride: one value maps to one 512-byte-separated line.
PROBE_STRIDE = 512

#: Value array1 holds at the in-bounds training index.
TRAIN_VALUE = 72
#: The secret byte at the out-of-bounds/protected index (Fig. 13).
SECRET_VALUE = 101

_SECRET_PKEY = 1
_LOCK = make_pkru(disabled=[_SECRET_PKEY])
_LOCK_WRITES = make_pkru(write_disabled=[_SECRET_PKEY])
_UNLOCK = 0


class AttackProgram(NamedTuple):
    """A built PoC: the program plus the addresses the receiver probes."""

    program: Program
    probe_base: int
    stride: int
    num_values: int
    train_value: int
    secret_value: int

    def probe_address(self, value: int) -> int:
        """Probe-array address that caches iff *value* was transmitted."""
        return self.probe_base + value * self.stride


def _flush_probe_lines(b, array2, values) -> None:
    """Emit clflush of the probe lines for each value in *values*."""
    for value in values:
        b.li(8, value * PROBE_STRIDE)
        b.add(8, 5, 8)
        b.clflush(8, 0)


def build_spectre_v1_poc(
    train_iterations: int = 24,
    train_value: int = TRAIN_VALUE,
    secret_value: int = SECRET_VALUE,
    num_values: int = 128,
) -> AttackProgram:
    """Listing 1 as a runnable program.

    The victim is ``if (cond) { wrpkru(enable); y = array2[array1[X] *
    stride]; wrpkru(disable); }``.  Training runs with ``cond = 1`` and
    ``X = 0`` (value ``train_value``); the attack flips ``cond`` to 0
    and ``X`` to the protected slot (value ``secret_value``), flushes
    the ``cond`` cache line so the branch resolves late, and relies on
    the not-taken prediction to execute the block transiently.
    """
    b = ProgramBuilder()
    ctrl = b.region("ctrl", 4096, init={0: 1, 64: 0})
    array1 = b.region(
        "array1", 4096, pkey=_SECRET_PKEY,
        init={0: train_value, 8: secret_value},
    )
    array2 = b.region("array2", num_values * PROBE_STRIDE + 4096)

    b.label("main")
    b.li(EAX, _LOCK)
    b.wrpkru()                      # commit: secret page locked
    b.li(2, ctrl.base)              # r2 -> ctrl
    b.li(4, array1.base)            # r4 -> array1
    b.li(5, array2.base)            # r5 -> array2

    b.li(7, train_iterations)
    b.label("train_loop")
    b.call("victim")
    b.addi(7, 7, -1)
    b.bne(7, 0, "train_loop")

    # Switch to the attack phase: cond = 0, X = 8 (the protected slot).
    b.li(3, 0)
    b.st(3, 2, 0)
    b.li(3, 8)
    b.st(3, 2, 64)
    # Flush the probe lines touched during training, and the cond line
    # so the mispredicted branch resolves slowly.
    _flush_probe_lines(b, array2, (train_value, secret_value))
    b.clflush(2, 0)
    b.lfence()                      # order the flushes before the call
    b.call("victim")
    b.halt()

    b.label("victim")
    b.ld(3, 2, 0)                   # cond (slow after the flush)
    b.ld(10, 2, 64)                 # X (separate line: stays fast)
    b.beq(3, 0, "victim_end")       # trained not-taken
    b.li(EAX, _UNLOCK)
    b.wrpkru()                      # transient permission upgrade
    b.add(11, 4, 10)
    b.ld(6, 11, 0)                  # secret = array1[X]
    b.slli(6, 6, 9)                 # * PROBE_STRIDE (512)
    b.add(8, 5, 6)
    b.ld(9, 8, 0)                   # transmit via the cache
    b.li(EAX, _LOCK)
    b.wrpkru()
    b.label("victim_end")
    b.ret()

    return AttackProgram(
        b.build(), array2.base, PROBE_STRIDE, num_values, train_value,
        secret_value,
    )


def build_spectre_bti_poc(
    train_iterations: int = 24,
    train_value: int = TRAIN_VALUE,
    secret_value: int = SECRET_VALUE,
    num_values: int = 128,
) -> AttackProgram:
    """Fig. 12(d): branch-target injection into a WRPKRU gadget.

    The victim makes an indirect call through a function pointer held in
    memory.  Training points it at ``gadget`` (which legitimately
    unlocks, reads ``array1[X]`` with the in-bounds ``X``, relocks, and
    returns).  The attack rewrites the pointer to ``benign`` and flushes
    its cache line; the BTB still predicts ``gadget``, so the gadget
    runs transiently with the malicious ``X``.
    """
    b = ProgramBuilder()
    ctrl = b.region("ctrl", 4096, init={0: 1, 64: 0})
    array1 = b.region(
        "array1", 4096, pkey=_SECRET_PKEY,
        init={0: train_value, 8: secret_value},
    )
    array2 = b.region("array2", num_values * PROBE_STRIDE + 4096)
    fnptr = b.region("fnptr", 4096)
    stack = b.region("stack", 4096)

    b.label("main")
    b.li(SP, stack.base + stack.size)
    b.li(EAX, _LOCK)
    b.wrpkru()
    b.li(2, ctrl.base)
    b.li(4, array1.base)
    b.li(5, array2.base)
    b.li(13, fnptr.base)

    # Point the function pointer at the gadget for training; the target
    # PCs are patched into the li immediates after the labels bind.
    gadget_li = b.li(12, 0)
    b.st(12, 13, 0)
    b.li(7, train_iterations)
    b.label("train_loop")
    b.call("victim")
    b.addi(7, 7, -1)
    b.bne(7, 0, "train_loop")

    # Attack: retarget the pointer at the benign function, set X to the
    # protected slot, flush probe lines and the pointer line so the BTB
    # prediction wins the race against the real target.
    benign_li = b.li(12, 0)
    b.st(12, 13, 0)
    b.li(3, 8)
    b.st(3, 2, 64)
    _flush_probe_lines(b, array2, (train_value, secret_value))
    b.clflush(13, 0)
    b.lfence()                      # order the flushes before the call
    b.call("victim")
    b.halt()

    b.label("victim")
    b.addi(SP, SP, -8)
    b.st(31, SP, 0)                 # save RA (victim is non-leaf)
    b.ld(12, 13, 0)                 # load the function pointer (slow)
    b.callr(12)
    b.ld(31, SP, 0)
    b.addi(SP, SP, 8)
    b.ret()

    gadget_pc = b.label("gadget")
    b.ld(10, 2, 64)                 # X
    b.li(EAX, _UNLOCK)
    b.wrpkru()
    b.add(11, 4, 10)
    b.ld(6, 11, 0)
    b.slli(6, 6, 9)
    b.add(8, 5, 6)
    b.ld(9, 8, 0)
    b.li(EAX, _LOCK)
    b.wrpkru()
    b.ret()

    benign_pc = b.label("benign")
    b.addi(9, 9, 1)
    b.ret()

    gadget_li.imm = gadget_pc
    benign_li.imm = benign_pc

    return AttackProgram(
        b.build(), array2.base, PROBE_STRIDE, num_values, train_value,
        secret_value,
    )


def build_speculative_overflow_poc(
    train_iterations: int = 24,
    legit_value: int = 33,
    attacker_value: int = 77,
    num_values: int = 128,
) -> AttackProgram:
    """SSIII-C: speculative buffer overflow via store-to-load forwarding.

    The protected slot is Write-Disabled outside the victim block.  The
    block legitimately unlocks, stores a value taken from ``ctrl+64``,
    reloads the slot, transmits the loaded value, and relocks.  During
    training the stored value is the slot's legitimate content; the
    attack sets ``cond = 0`` (so the block is only executed
    transiently) and plants ``attacker_value`` as the store operand.
    With unrestricted store-to-load forwarding the reload returns the
    corrupted value and the probe line for ``attacker_value`` becomes
    cached; SpecMPK disables forwarding from the checked store, so the
    reload waits for the Active List head and is squashed first.
    """
    b = ProgramBuilder()
    ctrl = b.region("ctrl", 4096, init={0: 1, 64: legit_value})
    slot = b.region("slot", 4096, pkey=_SECRET_PKEY, init={0: legit_value})
    array2 = b.region("array2", num_values * PROBE_STRIDE + 4096)

    b.label("main")
    b.li(EAX, _LOCK_WRITES)
    b.wrpkru()                      # commit: slot write-disabled
    b.li(2, ctrl.base)
    b.li(4, slot.base)
    b.li(5, array2.base)

    b.li(7, train_iterations)
    b.label("train_loop")
    b.call("victim")
    b.addi(7, 7, -1)
    b.bne(7, 0, "train_loop")

    b.li(3, 0)
    b.st(3, 2, 0)                   # cond = 0
    b.li(3, attacker_value)
    b.st(3, 2, 64)                  # plant the corrupting operand
    _flush_probe_lines(b, array2, (legit_value, attacker_value))
    b.clflush(2, 0)
    b.lfence()                      # order the flushes before the call
    b.call("victim")
    b.halt()

    b.label("victim")
    b.ld(3, 2, 0)                   # cond (slow during the attack)
    b.ld(14, 2, 64)                 # the value to store
    b.beq(3, 0, "victim_end")
    b.li(EAX, _UNLOCK)
    b.wrpkru()                      # transient WD -> WE upgrade
    b.st(14, 4, 0)                  # (transiently) corrupt the slot
    b.ld(6, 4, 0)                   # forwarding returns the corruption
    b.slli(6, 6, 9)
    b.add(8, 5, 6)
    b.ld(9, 8, 0)                   # transmit
    b.li(EAX, _LOCK_WRITES)
    b.wrpkru()
    b.label("victim_end")
    b.ret()

    return AttackProgram(
        b.build(), array2.base, PROBE_STRIDE, num_values, legit_value,
        attacker_value,
    )


def build_chosen_code_poc(
    secret_value: int = SECRET_VALUE,
    num_values: int = 128,
) -> AttackProgram:
    """Chosen-code attack (SSII-C, SSIX-B2): transient execution past a
    faulting instruction.

    A load that is guaranteed to fault architecturally (it touches a
    locked page) drains slowly toward retirement behind a long divide
    chain; the *younger* instructions — a permission-upgrading WRPKRU
    and a secret-transmitting load pair — execute transiently in its
    shadow, Meltdown-style.  The program always ends with the precise
    protection fault; what differs between microarchitectures is
    whether the probe line got cached first.
    """
    b = ProgramBuilder()
    array1 = b.region(
        "array1", 4096, pkey=_SECRET_PKEY, init={8: secret_value}
    )
    trap = b.region("trap", 4096, pkey=3, init={0: 1})
    array2 = b.region("array2", num_values * PROBE_STRIDE + 4096)

    delay = b.region("delay", 4096, init={0: 1 << 50})

    b.label("main")
    b.li(4, array1.base)
    b.li(5, array2.base)
    b.li(13, trap.base)
    b.li(12, delay.base)
    # Warm the secret's and the delay lines legally (still unlocked),
    # as the victim's own use of the pages would; then lock the pages.
    b.ld(9, 4, 0)
    b.ld(11, 12, 0)
    b.li(EAX, make_pkru(disabled=[_SECRET_PKEY, 3]))
    b.wrpkru()                      # commit: secret and trap pages locked
    b.li(8, secret_value * PROBE_STRIDE)
    b.add(8, 5, 8)
    b.clflush(8, 0)
    b.lfence()

    # Delay retirement so the faulting load sits far from the head
    # while its transient shadow executes: the divide chain is seeded
    # by a post-fence load, so it cannot start early.
    b.ld(2, 12, 0)                  # 1 << 50, from the warmed line
    b.li(3, 3)
    for _ in range(10):
        b.div(2, 2, 3)
    b.add(14, 2, 0)                 # serialise the chain's tail

    b.ld(9, 13, 0)                  # FAULTS architecturally (pKey 3)

    # The chosen transient code after the faulting instruction.
    b.li(EAX, _UNLOCK)
    b.wrpkru()                      # transient permission upgrade
    b.ld(6, 4, 8)                   # secret = array1[8]
    b.slli(6, 6, 9)
    b.add(8, 5, 6)
    b.ld(10, 8, 0)                  # transmit
    b.halt()                        # never reached: the fault wins

    return AttackProgram(
        b.build(), array2.base, PROBE_STRIDE, num_values, 0, secret_value,
    )

"""Flush+Reload receiver and attack harness (paper Fig. 13).

The transmitter is the victim program built by
:mod:`repro.attacks.spectre`; the receiver measures the post-run access
latency of every probe-array slot.  A slot whose latency equals the L1
hit latency was touched — transiently or not — during the run.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..core.config import CoreConfig, WrpkruPolicy
from ..core.pipeline import Simulator
from .spectre import AttackProgram


class AttackResult(NamedTuple):
    """Outcome of one end-to-end attack run."""

    policy: WrpkruPolicy
    #: Reload latency per probe-array value (Fig. 13's y-axis).
    latencies: List[int]
    #: Values whose probe line ended up cached.
    hot_values: List[int]
    #: True when the secret value leaked through the cache.
    leaked: bool
    halted: bool


def measure_reload_latencies(sim: Simulator, attack: AttackProgram) -> List[int]:
    """Reload phase: probe latency of every probe-array slot.

    Uses the non-mutating probe so earlier measurements do not perturb
    later ones (the simulated attacker would use rdtsc-timed loads);
    non-mutation is also what makes the batched sweep legal — element
    order provably cannot matter.
    """
    return sim.hierarchy.probe_latency_many(
        [attack.probe_address(value) for value in range(attack.num_values)]
    )


def run_attack(
    attack: AttackProgram,
    policy: WrpkruPolicy,
    config: Optional[CoreConfig] = None,
    max_cycles: int = 2_000_000,
    expect_fault: bool = False,
) -> AttackResult:
    """Execute the PoC under *policy* and decode the side channel.

    *expect_fault* is for chosen-code PoCs whose victim architecturally
    faults by construction; the side channel is measured afterwards.
    """
    if config is None:
        config = CoreConfig(wrpkru_policy=policy)
    elif config.wrpkru_policy is not policy:
        config = config.replace(wrpkru_policy=policy)
    sim = Simulator(attack.program, config)
    result = sim.run(max_cycles=max_cycles)
    if expect_fault:
        if result.fault is None:
            raise RuntimeError("chosen-code PoC was expected to fault")
    elif result.fault is not None:
        raise RuntimeError(f"attack program faulted architecturally: "
                           f"{result.fault}")
    latencies = measure_reload_latencies(sim, attack)
    threshold = sim.hierarchy.l1d.latency
    hot = [value for value, lat in enumerate(latencies) if lat <= threshold]
    leaked = attack.secret_value in hot
    return AttackResult(policy, latencies, hot, leaked, result.halted)


def run_attack_comparison(attack: AttackProgram, config=None) -> dict:
    """Run the PoC under all three microarchitectures (Fig. 13 data)."""
    return {
        policy: run_attack(attack, policy, config=config)
        for policy in WrpkruPolicy
    }

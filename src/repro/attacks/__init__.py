"""Transient-execution attack PoCs and the Flush+Reload receiver."""

from .flush_reload import (
    AttackResult,
    measure_reload_latencies,
    run_attack,
    run_attack_comparison,
)
from .spectre import (
    PROBE_STRIDE,
    build_chosen_code_poc,
    SECRET_VALUE,
    TRAIN_VALUE,
    AttackProgram,
    build_spectre_bti_poc,
    build_spectre_v1_poc,
    build_speculative_overflow_poc,
)

__all__ = [
    "AttackProgram",
    "AttackResult",
    "PROBE_STRIDE",
    "SECRET_VALUE",
    "TRAIN_VALUE",
    "build_chosen_code_poc",
    "build_spectre_bti_poc",
    "build_spectre_v1_poc",
    "build_speculative_overflow_poc",
    "measure_reload_latencies",
    "run_attack",
    "run_attack_comparison",
]

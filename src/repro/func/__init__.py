"""Functional (non-timing) MPK applications: Kard race detection."""

from .kard import KardRuntime, RaceReport, SharedObject

__all__ = ["KardRuntime", "RaceReport", "SharedObject"]

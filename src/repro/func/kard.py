"""Kard-style dynamic data-race detection over MPK (paper SSIX-D).

Kard [8] colours each shared object with a pKey that is Access-Disabled
in every thread's PKRU.  Any access therefore traps; the trap handler
associates the object with the lock the thread currently holds and
grants (only) that thread access.  A later access from a thread holding
a *different* lock — or no lock — traps again and is flagged as a
potential race from inconsistent lock usage.  Permissions revert on
unlock, so every critical section re-establishes ownership.

The paper uses this scenario to argue SpecMPK does not break
non-security MPK use cases; here it doubles as a working race detector
built on the repo's MPK substrate (faults, pKey allocation, per-thread
PKRU), including libmpk-style domain virtualisation when objects
outnumber the 16 hardware keys.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set

from ..memory.address_space import AddressSpace
from ..memory.page_table import PAGE_SIZE
from ..mpk.domains import DomainManager
from ..mpk.faults import ProtectionFault
from ..mpk.pkru import set_permissions


class RaceReport(NamedTuple):
    """One detected inconsistent-lock-usage event."""

    object_name: str
    thread: int
    held_lock: Optional[str]
    owning_lock: Optional[str]
    access: str


class SharedObject:
    """A shared variable living on its own MPK-coloured page."""

    __slots__ = ("name", "address", "domain", "owner_lock", "owner_thread")

    def __init__(self, name: str, address: int, domain: int) -> None:
        self.name = name
        self.address = address
        self.domain = domain
        #: Lock currently associated with the object (per critical
        #: section), and the single thread granted write access.
        self.owner_lock: Optional[str] = None
        self.owner_thread: Optional[int] = None


class KardRuntime:
    """The detector: threads, locks, objects, and the fault handler."""

    def __init__(self, num_threads: int = 2) -> None:
        self.space = AddressSpace()
        self.domains = DomainManager(self.space)
        self._next_page = 0x0010_0000
        self.objects: Dict[str, SharedObject] = {}
        #: Per-thread PKRU: all managed keys disabled by default.
        self.pkru: Dict[int, int] = {
            tid: self.domains.base_pkru() for tid in range(num_threads)
        }
        self.held_locks: Dict[int, List[str]] = {
            tid: [] for tid in range(num_threads)
        }
        self.races: List[RaceReport] = []
        self.faults_trapped = 0

    # -- setup ------------------------------------------------------------

    def register_object(self, name: str, initial: int = 0) -> SharedObject:
        """Allocate a shared object on a fresh page in its own domain."""
        if name in self.objects:
            raise ValueError(f"object {name!r} already registered")
        address = self._next_page
        self._next_page += 2 * PAGE_SIZE  # guard page between objects
        self.space.page_table.map_range(address, PAGE_SIZE)
        self.space.poke(address, initial)
        domain = self.domains.create_domain()
        self.domains.attach(domain, address, PAGE_SIZE)
        obj = SharedObject(name, address, domain)
        self.objects[name] = obj
        return obj

    # -- lock discipline -----------------------------------------------------

    def lock(self, tid: int, lock_name: str) -> None:
        self.held_locks[tid].append(lock_name)

    def unlock(self, tid: int, lock_name: str) -> None:
        held = self.held_locks[tid]
        if lock_name not in held:
            raise ValueError(f"thread {tid} does not hold {lock_name!r}")
        held.remove(lock_name)
        # Revoke access to every object this critical section owned and
        # clear the per-critical-section association.
        for obj in self.objects.values():
            if obj.owner_lock == lock_name and obj.owner_thread == tid:
                self._revoke(tid, obj)
                obj.owner_lock = None
                obj.owner_thread = None

    # -- accesses ----------------------------------------------------------------

    def write(self, tid: int, name: str, value: int) -> None:
        """Thread *tid* writes the shared object (may trap into Kard)."""
        obj = self.objects[name]
        try:
            self.space.store(obj.address, value, self.pkru[tid])
        except ProtectionFault:
            self._trap(tid, obj, "write")
            self.space.store(obj.address, value, self.pkru[tid])

    def read(self, tid: int, name: str) -> int:
        obj = self.objects[name]
        try:
            return self.space.load(obj.address, self.pkru[tid])
        except ProtectionFault:
            self._trap(tid, obj, "read")
            return self.space.load(obj.address, self.pkru[tid])

    # -- the Kard trap handler ---------------------------------------------------

    def _trap(self, tid: int, obj: SharedObject, access: str) -> None:
        """Protection-fault handler implementing Kard's policy."""
        self.faults_trapped += 1
        held = self.held_locks[tid]
        innermost = held[-1] if held else None

        if obj.owner_lock is None:
            # First access in a critical section: associate the object
            # with the lock (None = unsynchronised access).
            if innermost is None:
                self.races.append(
                    RaceReport(obj.name, tid, None, None, access)
                )
            obj.owner_lock = innermost
            obj.owner_thread = tid
            self._grant(tid, obj)
            return

        if innermost == obj.owner_lock and innermost is not None:
            if obj.owner_thread != tid:
                # Same lock from another thread: properly synchronised —
                # ownership migrates (the previous holder released the
                # lock or this is a read after a handoff).
                if obj.owner_thread is not None:
                    self._revoke(obj.owner_thread, obj)
                obj.owner_thread = tid
            self._grant(tid, obj)
            return

        # Different lock (or no lock): inconsistent lock usage.
        self.races.append(
            RaceReport(obj.name, tid, innermost, obj.owner_lock, access)
        )
        # Keep executing, as Kard does: grant access but keep the
        # original association so further offenders are also caught.
        self._grant(tid, obj)

    # -- permission plumbing --------------------------------------------------------

    def _grant(self, tid: int, obj: SharedObject) -> None:
        pkey = self.domains.activate(obj.domain)
        self.pkru[tid] = set_permissions(
            self.pkru[tid], pkey, access_disable=False, write_disable=False
        )

    def _revoke(self, tid: int, obj: SharedObject) -> None:
        """Drop *tid*'s PKRU access to the object's domain."""
        pkey = self.domains.activate(obj.domain)
        self.pkru[tid] = set_permissions(
            self.pkru[tid], pkey, access_disable=True, write_disable=True
        )

    # -- reporting -------------------------------------------------------------------

    @property
    def race_count(self) -> int:
        return len(self.races)

    def report(self) -> str:
        if not self.races:
            return "Kard: no inconsistent lock usage detected"
        lines = [f"Kard: {len(self.races)} potential race(s):"]
        for race in self.races:
            lines.append(
                f"  {race.object_name}: thread {race.thread} "
                f"{race.access} under lock {race.held_lock!r}, "
                f"object owned by lock {race.owning_lock!r}"
            )
        return "\n".join(lines)

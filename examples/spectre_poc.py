#!/usr/bin/env python3
"""Transient-execution attacks against speculative WRPKRU (Figs. 12/13).

Runs the three proof-of-concept attacks under all three WRPKRU
microarchitectures and prints which microarchitecture leaks:

* Spectre-v1 with a transient permission upgrade (Fig. 12c, Listing 1)
* Spectre-BTI into a WRPKRU gadget (Fig. 12d)
* Speculative buffer overflow via store-to-load forwarding (SSIII-C)

Under NonSecure SpecMPK the secret's probe line becomes cached (the
Fig. 13 side channel); the serialized baseline and SpecMPK stay clean.
"""

from repro.attacks import (
    build_chosen_code_poc,
    build_spectre_bti_poc,
    build_spectre_v1_poc,
    build_speculative_overflow_poc,
    run_attack,
)
from repro.core import WrpkruPolicy
from repro.harness import render_latency_series

ATTACKS = [
    ("Spectre-v1 + transient WRPKRU (Fig. 12c)", build_spectre_v1_poc, False),
    ("Spectre-BTI into WRPKRU gadget (Fig. 12d)", build_spectre_bti_poc, False),
    ("Speculative buffer overflow (SSIII-C)", build_speculative_overflow_poc,
     False),
    ("Chosen-code / Meltdown-style (SSII-C)", build_chosen_code_poc, True),
]


def main() -> None:
    for title, builder, faults in ATTACKS:
        attack = builder()
        print(f"=== {title} ===")
        for policy in WrpkruPolicy:
            result = run_attack(attack, policy, expect_fault=faults)
            verdict = "LEAKED" if result.leaked else "mitigated"
            hot = result.hot_values or "-"
            print(f"  {policy.value:15s}: {verdict:9s} (hot probe values: {hot})")
        print()

    print("=== Fig. 13: reload latencies for the Spectre-v1 PoC ===")
    attack = build_spectre_v1_poc()
    nonsecure = run_attack(attack, WrpkruPolicy.NONSECURE_SPEC)
    specmpk = run_attack(attack, WrpkruPolicy.SPECMPK)
    print(render_latency_series(nonsecure.latencies,
                                title="NonSecure SpecMPK:"))
    print(render_latency_series(specmpk.latencies, title="SpecMPK:"))
    print(
        f"\nsecret value = {attack.secret_value}; NonSecure leaks it, "
        f"SpecMPK does not."
    )


if __name__ == "__main__":
    main()

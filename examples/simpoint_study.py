#!/usr/bin/env python3
"""SimPoint methodology + ROB_pkru sensitivity (Figs. 9/11 workflow).

Reproduces the paper's evaluation flow on one workload:

1. Profile basic-block vectors functionally and select representative
   intervals by k-means clustering (SimPoint [48]).
2. Detailed-simulate only those intervals and combine IPCs by weight.
3. Sweep the ROB_pkru size to show the Fig. 11 sensitivity.
"""

from repro.core import CoreConfig, Simulator, WrpkruPolicy
from repro.simpoint import collect_bbv, select_simpoints, weighted_ipc
from repro.workloads import build_workload, profile_by_label

LABEL = "520.omnetpp_r (SS)"


def main() -> None:
    workload = build_workload(profile_by_label(LABEL))
    print(f"workload: {LABEL} ({len(workload.program)} static instructions)")

    print("\n=== 1. BBV profiling + SimPoint selection ===")
    profile = collect_bbv(
        workload.program, interval_length=3000,
        max_instructions=60_000, pkru=workload.initial_pkru,
    )
    selection = select_simpoints(profile, top_n=4)
    print(f"profiled {profile.total_instructions} instructions "
          f"in {profile.num_intervals} intervals")
    for point in selection.points:
        print(f"  simpoint: interval {point.interval_index:3d} "
              f"(cluster {point.cluster}, weight {point.weight:.2f})")

    print("\n=== 2. Weighted IPC from detailed simpoint simulation ===")
    for policy in (WrpkruPolicy.SERIALIZED, WrpkruPolicy.SPECMPK):
        ipc = weighted_ipc(
            workload.program, selection,
            config=CoreConfig(wrpkru_policy=policy),
            initial_pkru=workload.initial_pkru,
        )
        print(f"  {policy.value:15s}: weighted IPC {ipc:.3f}")

    print("\n=== 3. ROB_pkru sensitivity (Fig. 11) ===")
    base = None
    for size in (2, 4, 8):
        config = CoreConfig(
            wrpkru_policy=WrpkruPolicy.SPECMPK, rob_pkru_size=size
        )
        sim = Simulator(workload.program, config,
                        initial_pkru=workload.initial_pkru)
        sim.prewarm_tlb()
        sim.run(max_instructions=10_000, warmup_instructions=3_000,
                max_cycles=5_000_000)
        if base is None:
            base = sim.stats.ipc
        ratio = f"1/{config.active_list_size // size}"
        print(f"  ROB_pkru={size} (AL ratio {ratio}): "
              f"IPC {sim.stats.ipc:.3f} "
              f"({sim.stats.rename_stall_rob_pkru_full} full-window stalls)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Shadow-stack protection: blocking a ROP-style return overwrite.

Two demonstrations:

1. *Security*: a victim function whose stack-saved return address gets
   overwritten (the classic ROP entry point).  Without the shadow
   stack the control flow is hijacked; with the MPK-protected shadow
   stack the mismatch check catches it, and a direct attempt to
   overwrite the shadow stack itself raises a protection fault.
2. *Performance*: the cost of the protection across the serialized,
   NonSecure, and SpecMPK microarchitectures on a call-heavy workload
   (the Fig. 9 story in miniature).
"""

from repro import CoreConfig, ProgramBuilder, Simulator, WrpkruPolicy
from repro.isa.registers import EAX, RA, SP, SSP
from repro.mpk import ProtectionFault, make_pkru
from repro.workloads import build_workload, profile_by_label
from repro.workloads.shadow_stack import PKRU_LOCKED, PKRU_UNLOCKED

HIJACK_MARK = 0xBAD
SAFE_MARK = 0x600D


def build_victim(protect: bool, attack_shadow: bool = False):
    """A victim whose on-stack RA is corrupted mid-function."""
    b = ProgramBuilder()
    stack = b.region("stack", 4096)
    shadow = b.region("shadow", 4096, pkey=1 if protect else 0)

    b.label("main")
    b.li(SP, stack.base + stack.size)
    b.li(SSP, shadow.base)
    if protect:
        b.li(EAX, PKRU_LOCKED)
        b.wrpkru()
    b.call("victim")
    b.li(9, SAFE_MARK)          # normal return path
    b.halt()

    b.label("hijacked")
    b.li(9, HIJACK_MARK)        # the ROP "gadget"
    b.halt()

    b.label("victim")
    if protect:
        # SS prologue: push RA under a write-enable window.
        b.li(EAX, PKRU_UNLOCKED)
        b.wrpkru()
        b.addi(SSP, SSP, 8)
        b.st(RA, SSP, 0)
        b.li(EAX, PKRU_LOCKED)
        b.wrpkru()
    b.addi(SP, SP, -8)
    b.st(RA, SP, 0)             # regular RA spill

    # --- the vulnerability: an attacker-controlled write lands on the
    # saved return address (and, optionally, on the shadow copy too).
    b.li(7, b._labels["hijacked"])
    b.st(7, SP, 0)
    if attack_shadow:
        b.st(7, SSP, 0)         # faults when the shadow stack is locked

    b.ld(RA, SP, 0)             # reload the (corrupted) RA
    b.addi(SP, SP, 8)
    if protect:
        # SS epilogue: compare the shadow copy with the live RA.
        b.ld(26, SSP, 0)
        b.addi(SSP, SSP, -8)
        b.bne(26, RA, "violation")
    b.ret()

    b.label("violation")
    b.li(9, 0xDE7EC7ED)
    b.halt()

    return b.build()


def run(program, policy=WrpkruPolicy.SPECMPK):
    sim = Simulator(program, CoreConfig(wrpkru_policy=policy))
    result = sim.run(max_cycles=100_000)
    outcome = sim.prf.read(sim.rename_tables.amt[9])
    return result, outcome


def main() -> None:
    print("=== 1. ROP overwrite, no protection ===")
    _, outcome = run(build_victim(protect=False))
    assert outcome == HIJACK_MARK
    print(f"control flow hijacked: r9 = {outcome:#x} (gadget executed)\n")

    print("=== 2. ROP overwrite, MPK shadow stack ===")
    _, outcome = run(build_victim(protect=True))
    assert outcome == 0xDE7EC7ED
    print(f"mismatch detected: r9 = {outcome:#x} (violation handler)\n")

    print("=== 3. Overwriting the shadow stack itself ===")
    result, _ = run(build_victim(protect=True, attack_shadow=True))
    assert isinstance(result.fault, ProtectionFault)
    print(f"blocked by MPK: {result.fault}\n")

    print("=== 4. Protection cost on 520.omnetpp_r (SS) ===")
    workload = build_workload(profile_by_label("520.omnetpp_r (SS)"))
    baseline = None
    for policy in WrpkruPolicy:
        sim = Simulator(
            workload.program, CoreConfig(wrpkru_policy=policy),
            initial_pkru=workload.initial_pkru,
        )
        sim.prewarm_tlb()
        sim.run(max_instructions=10_000, warmup_instructions=3_000,
                max_cycles=5_000_000)
        if baseline is None:
            baseline = sim.stats.ipc
        print(
            f"{policy.value:15s}: IPC {sim.stats.ipc:.3f} "
            f"({sim.stats.ipc / baseline:.2f}x vs serialized), "
            f"{sim.stats.wrpkru_per_kilo:.1f} WRPKRU/kinst"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Kard-style data-race detection over MPK (paper SSIX-D).

A non-security use of MPK: each shared object is coloured with a
protection key that every thread's PKRU keeps Access-Disabled, so the
first access in a critical section traps.  The trap handler associates
the object with the held lock; an access under a *different* lock is
flagged as inconsistent lock usage — a potential data race.

Also demonstrates libmpk-style domain virtualisation: more shared
objects than the 16 hardware pKeys.
"""

from repro.func import KardRuntime


def main() -> None:
    print("=== Correctly synchronised program ===")
    kard = KardRuntime(num_threads=2)
    kard.register_object("balance", initial=100)
    for tid, delta in ((0, +30), (1, -20)):
        kard.lock(tid, "account_lock")
        value = kard.read(tid, "balance")
        kard.write(tid, "balance", value + delta)
        kard.unlock(tid, "account_lock")
    balance = kard.space.peek(kard.objects["balance"].address)
    print(f"final balance: {balance} (faults trapped: {kard.faults_trapped})")
    print(kard.report())

    print("\n=== Inconsistent lock usage (the race) ===")
    kard = KardRuntime(num_threads=2)
    kard.register_object("shared_list")
    kard.lock(0, "list_lock")
    kard.write(0, "shared_list", 1)
    # Thread 1 uses the WRONG lock while thread 0 is still inside.
    kard.lock(1, "iterator_lock")
    kard.write(1, "shared_list", 2)
    kard.unlock(1, "iterator_lock")
    kard.unlock(0, "list_lock")
    print(kard.report())

    print("\n=== Unsynchronised access ===")
    kard = KardRuntime()
    kard.register_object("counter")
    kard.write(0, "counter", 1)  # no lock held at all
    print(kard.report())

    print("\n=== 30 objects through 14 physical pKeys (libmpk-style) ===")
    kard = KardRuntime(num_threads=2)
    for i in range(30):
        kard.register_object(f"obj{i}")
    for i in range(30):
        tid = i % 2
        kard.lock(tid, f"lock{i}")
        kard.write(tid, f"obj{i}", i * i)
        kard.unlock(tid, f"lock{i}")
    print(
        f"objects: 30, physical keys: {kard.domains.capacity}, "
        f"domain evictions: {kard.domains.evictions}, "
        f"races: {kard.race_count}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: MPK semantics and the three WRPKRU microarchitectures.

Assembles a small program that locks a secret page with a protection
key, runs it on the cycle-level core under each WRPKRU policy, and
shows (a) identical architectural results, (b) different cycle counts,
and (c) precise protection-fault delivery.
"""

from repro import CoreConfig, Simulator, WrpkruPolicy, assemble
from repro.mpk import make_pkru

PROGRAM = f"""
.region secret 4096 pkey=1 init=0:0x5ec2e7
.region data   4096

main:
    # Lock the secret page (Access-Disable for pKey 1).
    li   eax, {make_pkru(disabled=[1])}
    wrpkru

    # Regular computation is unaffected by the lock.
    li   r2, 0x12000        # data region base
    li   r3, 40
    li   r4, 2
    mul  r3, r3, r4
    addi r3, r3, 4          # r3 = 84
    st   r3, 0(r2)

    # Briefly unlock, read the secret, relock.
    li   eax, 0
    wrpkru
    li   r5, 0x10000        # secret region base
    ld   r6, 0(r5)
    li   eax, {make_pkru(disabled=[1])}
    wrpkru

    halt
"""

FAULTING_PROGRAM = f"""
.region secret 4096 pkey=1 init=0:0x5ec2e7

main:
    li   eax, {make_pkru(disabled=[1])}
    wrpkru
    li   r5, 0x10000
    ld   r6, 0(r5)          # locked: must raise a protection fault
    halt
"""


def main() -> None:
    program = assemble(PROGRAM)
    print("=== MPK sandwich under the three WRPKRU microarchitectures ===")
    for policy in WrpkruPolicy:
        sim = Simulator(program, CoreConfig(wrpkru_policy=policy))
        result = sim.run()
        assert result.halted and result.fault is None
        secret = sim.prf.read(sim.rename_tables.amt[6])
        print(
            f"{policy.value:15s}: {sim.stats.cycles:4d} cycles, "
            f"IPC {sim.stats.ipc:.2f}, r6 = {secret:#x}"
        )

    print("\n=== Precise protection faults ===")
    faulting = assemble(FAULTING_PROGRAM)
    for policy in WrpkruPolicy:
        sim = Simulator(faulting, CoreConfig(wrpkru_policy=policy))
        result = sim.run()
        assert result.fault is not None
        print(f"{policy.value:15s}: {result.fault}")

    print("\n=== Pipeline statistics (SpecMPK) ===")
    sim = Simulator(program, CoreConfig(wrpkru_policy=WrpkruPolicy.SPECMPK))
    sim.run()
    print(sim.stats.report())


if __name__ == "__main__":
    main()

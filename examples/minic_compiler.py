#!/usr/bin/env python3
"""MiniC: writing protected programs in a real (tiny) language.

The paper's protection schemes are applied by instrumenting compilers.
This example writes an ERIM-style session-key service in MiniC: the key
material lives in a ``secure`` array (its pages coloured with a
dedicated pKey, every access sandwiched between WRPKRUs), and the
shadow-stack pass protects every return address.  The compiled binary
runs on the cycle-level core under all three WRPKRU microarchitectures.
"""

from repro.core import CoreConfig, Simulator, WrpkruPolicy
from repro.lang import CompileOptions, compile_module, interpret

SOURCE = """
// An ERIM-style session-key vault: keys are MPK-protected, accesses
// happen only inside narrow permission windows.
secure session_keys[16] = {4242, 1717, 9999};
array message[8] = {3, 1, 4, 1, 5, 9, 2, 6};
array ciphertext[8];

fn derive_key(slot, nonce) {
    // Touch the vault: instrumented with a WRPKRU sandwich.
    return session_keys[slot & 15] ^ (nonce * 2654435761);
}

fn encrypt_block(i, key) {
    return (message[i & 7] + key) ^ (key >> 7);
}

fn main() {
    var i = 0;
    var checksum = 0;
    while (i < 8) {
        var key = derive_key(i % 3, i + 1);
        var block = encrypt_block(i, key);
        ciphertext[i] = block;
        checksum = checksum ^ block;
        i = i + 1;
    }
    session_keys[15] = checksum & 65535;   // vault write-back
    return checksum;
}
"""


def main() -> None:
    expected = interpret(SOURCE)
    print(f"reference interpreter: checksum = {expected:#x}\n")

    compiled = compile_module(
        SOURCE, CompileOptions(shadow_stack=True)
    )
    wrpkrus = sum(
        1 for inst in compiled.program.instructions if inst.is_wrpkru
    )
    print(
        f"compiled: {len(compiled.program)} instructions, "
        f"{wrpkrus} WRPKRU sites, initial PKRU = "
        f"{compiled.initial_pkru:#06x}"
    )

    from repro.analysis import scan_program

    assert scan_program(compiled.program) == []
    print("WRPKRU binary discipline: verified by the SSIX-B scanner\n")

    baseline = None
    for policy in WrpkruPolicy:
        sim = Simulator(
            compiled.program,
            CoreConfig(wrpkru_policy=policy),
            initial_pkru=compiled.initial_pkru,
        )
        sim.prewarm_tlb()
        result = sim.run(max_cycles=1_000_000)
        assert result.halted and result.fault is None
        actual = sim.prf.read(
            sim.rename_tables.amt[compiled.result_register()]
        )
        assert actual == expected
        if baseline is None:
            baseline = sim.stats.cycles
        print(
            f"{policy.value:15s}: checksum {actual:#x} in "
            f"{sim.stats.cycles:5d} cycles "
            f"({baseline / sim.stats.cycles:.2f}x vs serialized, "
            f"{sim.stats.wrpkru_retired} WRPKRUs retired)"
        )

    # The vault is inaccessible outside the instrumented windows.
    from repro.mpk import ProtectionFault

    vault = compiled.array_regions["session_keys"]
    try:
        sim.memory.load(vault.base, compiled.initial_pkru)
    except ProtectionFault as fault:
        print(f"\ndirect vault access under the locked PKRU: {fault}")


if __name__ == "__main__":
    main()

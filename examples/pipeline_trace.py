#!/usr/bin/env python3
"""Observing the pipeline: event tracing and top-down CPI attribution.

Where do the cycles go when WRPKRU serializes the rename stage?  This
example runs the same workload under the serialized baseline and under
SpecMPK with tracing enabled, then uses the ``repro.trace`` layer to

* decompose every cycle into the top-down buckets (base / frontend /
  bad-speculation / backend / WRPKRU-serialization / ROB_pkru / TLB) —
  the buckets reconcile to the total cycle count by construction;
* export a Chrome ``trace_event`` JSON you can load in
  chrome://tracing or https://ui.perfetto.dev;
* print a Konata-style text pipeline view of the last instructions.

The tracing hooks cost nothing when disabled: ``TraceOptions()``
defaults to off and the simulator skips every probe.
"""

import pathlib

from repro.core import WrpkruPolicy
from repro.harness import RunRequest, TraceOptions, execute
from repro.trace import export_chrome_trace, render_pipeline_text

WORKLOAD = "520.omnetpp_r (SS)"


def traced_run(policy: WrpkruPolicy):
    return execute(RunRequest(
        workload=WORKLOAD,
        policy=policy,
        instructions=4000,
        warmup=1000,
        trace=TraceOptions(enabled=True),
    ))


def main() -> None:
    print(f"=== Top-down CPI attribution: {WORKLOAD} ===\n")
    results = {}
    for policy in (WrpkruPolicy.SERIALIZED, WrpkruPolicy.SPECMPK):
        result = traced_run(policy)
        results[policy] = result
        print(f"--- {policy.value} ---")
        print(result.topdown().report())
        print()

    serialized = results[WrpkruPolicy.SERIALIZED].topdown()
    specmpk = results[WrpkruPolicy.SPECMPK].topdown()
    recovered = (
        serialized.buckets["wrpkru_serialization"]
        - specmpk.buckets["wrpkru_serialization"]
    )
    print(f"WRPKRU-serialization cycles: "
          f"{serialized.buckets['wrpkru_serialization']} (serialized) -> "
          f"{specmpk.buckets['wrpkru_serialization']} (specmpk), "
          f"{recovered} recovered by speculative WRPKRU execution")

    # Per-structure occupancy histograms land on SimStats.
    stats = results[WrpkruPolicy.SPECMPK].stats
    al_hist = stats.occupancy_histograms["active_list"]
    busiest = max(al_hist, key=al_hist.get)
    print(f"Active List most common occupancy: {busiest} entries "
          f"({al_hist[busiest]} cycles)")

    # Chrome trace export: one lane per in-flight instruction slot.
    out = pathlib.Path("results")
    out.mkdir(exist_ok=True)
    path = out / "pipeline_trace.json"
    export_chrome_trace(results[WrpkruPolicy.SPECMPK].trace, path)
    print(f"\nChrome trace written to {path} "
          "(open in chrome://tracing or Perfetto)")

    print("\n=== Konata-style pipeline view (last 16 instructions) ===")
    print(render_pipeline_text(results[WrpkruPolicy.SPECMPK].trace, last=16))


if __name__ == "__main__":
    main()

"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper, asserts
the qualitative shape the paper reports, and writes the rendered result
to ``benchmarks/results/`` for inspection (EXPERIMENTS.md summarises
them).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one rendered experiment output to the results directory."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save

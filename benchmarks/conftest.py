"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper, asserts
the qualitative shape the paper reports, and writes the rendered result
to ``benchmarks/results/`` for inspection (EXPERIMENTS.md summarises
them).
"""

import pathlib
import time
import timeit

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


#: Conservative number of disabled-trace guard evaluations
#: (``if self.trace is not None``) per fetched instruction and per
#: cycle in ``repro.core.pipeline`` — an over-count of the actual hook
#: sites, so the estimate below upper-bounds the true cost.
_GUARDS_PER_INSTRUCTION = 10
_GUARDS_PER_CYCLE = 10


@pytest.fixture(scope="session", autouse=True)
def tracing_off_overhead_guard(results_dir):
    """Assert the disabled observability hooks cost <5% of sim time.

    With tracing off every probe in the pipeline reduces to an
    ``attribute is not None`` test.  This guard times one Fig. 3-path
    run with tracing disabled, prices an over-count of the guard
    evaluations it performed at the measured cost of such a test, and
    asserts that upper bound stays below 5% of the run's wall clock —
    i.e. the instrumented simulator is within 5% of a hook-free one.
    """
    from repro.core import WrpkruPolicy
    from repro.harness import run_workload

    start = time.perf_counter()
    stats = run_workload(
        "520.omnetpp_r (SS)", WrpkruPolicy.SERIALIZED,
        instructions=2_000, warmup=500,
    )
    elapsed = time.perf_counter() - start

    class _Probe:
        trace = None
    probe = _Probe()
    loops = 200_000
    per_guard = timeit.timeit(
        "probe.trace is not None", globals={"probe": probe}, number=loops
    ) / loops

    guards = (_GUARDS_PER_INSTRUCTION * stats.instructions_fetched
              + _GUARDS_PER_CYCLE * stats.cycles)
    overhead = guards * per_guard / elapsed
    (results_dir / "observability_overhead.txt").write_text(
        f"tracing-off overhead bound: {overhead:.2%} of wall clock\n"
        f"  run: {stats.cycles} cycles, {stats.instructions_fetched} "
        f"fetched, {elapsed:.3f}s\n"
        f"  guard evaluations (over-count): {guards}\n"
        f"  cost per disabled guard: {per_guard * 1e9:.1f} ns\n"
    )
    assert overhead < 0.05, (
        f"disabled tracing hooks cost {overhead:.2%} of simulator "
        f"wall-clock (budget: 5%)"
    )
    yield


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one rendered experiment output to the results directory."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save

"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper, asserts
the qualitative shape the paper reports, and writes the rendered result
to ``benchmarks/results/`` for inspection (EXPERIMENTS.md summarises
them).
"""

import os
import pathlib
import time
import timeit

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _write_result(path: pathlib.Path, text: str) -> None:
    """One rendered artifact, via the shared atomic writer (lazy import:
    the suite runs with ``PYTHONPATH=src``, resolved at call time)."""
    from repro.report import atomic_write_text

    atomic_write_text(path, text)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


#: Conservative number of disabled-trace guard evaluations
#: (``if self.trace is not None``) per fetched instruction and per
#: *stepped* cycle in ``repro.core.pipeline`` — an over-count of the
#: actual hook sites, so the estimate below upper-bounds the true cost.
#: Cycles jumped by the idle fast-skip (``repro.perf``) evaluate no
#: guards at all, so they are excluded from the per-cycle charge.
_GUARDS_PER_INSTRUCTION = 10
_GUARDS_PER_CYCLE = 10


def _stepped_cycles() -> int:
    """How many cycles the guard's reference run actually steps.

    Re-runs the same simulation (untimed) with a counting wrapper on
    ``step_cycle``; the simulator is deterministic, so the count equals
    the timed run's.  Idle-skipped cycles never enter ``step_cycle``
    and execute zero trace guards.
    """
    from repro.core.config import CoreConfig, WrpkruPolicy
    from repro.core.pipeline import Simulator
    from repro.workloads.generator import build_workload
    from repro.workloads.instrument import InstrumentMode
    from repro.workloads.profiles import profile_by_label

    workload = build_workload(
        profile_by_label("520.omnetpp_r (SS)"), InstrumentMode.PROTECTED
    )
    sim = Simulator(
        workload.program,
        CoreConfig(wrpkru_policy=WrpkruPolicy.SERIALIZED),
        initial_pkru=workload.initial_pkru,
    )
    sim.prewarm_tlb()
    stepped = 0
    original = sim.step_cycle

    def _counting_step():
        nonlocal stepped
        stepped += 1
        original()

    sim.step_cycle = _counting_step
    sim.run(
        max_cycles=200 * 2_500, max_instructions=2_000,
        warmup_instructions=500,
    )
    return stepped


@pytest.fixture(scope="session", autouse=True)
def tracing_off_overhead_guard(results_dir):
    """Assert the disabled observability hooks cost <5% of sim time.

    With tracing off every probe in the pipeline reduces to an
    ``attribute is not None`` test.  This guard times one Fig. 3-path
    run with tracing disabled, prices an over-count of the guard
    evaluations it performed at the measured cost of such a test, and
    asserts that upper bound stays below 5% of the run's wall clock —
    i.e. the instrumented simulator is within 5% of a hook-free one.
    """
    from repro.core import WrpkruPolicy
    from repro.harness import run_workload

    # The timed run must actually simulate: a run-cache hit would return
    # in microseconds and turn the overhead ratio into noise.
    saved = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = "0"
    try:
        start = time.perf_counter()
        stats = run_workload(
            "520.omnetpp_r (SS)", WrpkruPolicy.SERIALIZED,
            instructions=2_000, warmup=500,
        )
        elapsed = time.perf_counter() - start
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved

    class _Probe:
        trace = None
    probe = _Probe()
    loops = 200_000
    per_guard = timeit.timeit(
        "probe.trace is not None", globals={"probe": probe}, number=loops
    ) / loops

    stepped = _stepped_cycles()
    guards = (_GUARDS_PER_INSTRUCTION * stats.instructions_fetched
              + _GUARDS_PER_CYCLE * stepped)
    overhead = guards * per_guard / elapsed
    _write_result(
        results_dir / "observability_overhead.txt",
        f"tracing-off overhead bound: {overhead:.2%} of wall clock\n"
        f"  run: {stats.cycles} cycles ({stepped} stepped, rest "
        f"idle-skipped), {stats.instructions_fetched} fetched, "
        f"{elapsed:.3f}s\n"
        f"  guard evaluations (over-count): {guards}\n"
        f"  cost per disabled guard: {per_guard * 1e9:.1f} ns\n"
    )
    assert overhead < 0.05, (
        f"disabled tracing hooks cost {overhead:.2%} of simulator "
        f"wall-clock (budget: 5%)"
    )
    yield


#: Conservative count of always-on metric bookkeeping operations per
#: *fetched* instruction: the L1D miss-delta probe around each executed
#: load (two attribute reads + compare), the per-fill counter bump, the
#: wrong-path reclassification test per squashed instruction, and the
#: lazy occupancy-histogram update per WRPKRU event.  Loads are ~1/4 of
#: the mix at ~4 ops each, fills/squashes/WRPKRU events are small
#: fractions of an op per instruction — six per fetched instruction
#: over-counts all of them together severalfold.
_METRIC_OPS_PER_INSTRUCTION = 6


@pytest.fixture(scope="session", autouse=True)
def metrics_off_overhead_guard(results_dir):
    """Assert the metrics residue costs <2% of sim time with
    ``REPRO_METRICS=0``.

    Snapshot *collection* runs once per run and is skipped entirely
    when disabled; what remains on the hot path are the provenance
    probes (L1D miss-delta per load, fill counters, wrong-path checks,
    lazy occupancy credit) — plain attribute arithmetic that runs
    whether or not a snapshot is taken.  This guard times one kernel
    run with metrics (and the run cache) off, prices an over-count of
    those operations at the measured cost of an attribute
    read-modify-write, and asserts the bound stays below 2% of wall
    clock — the acceptance budget for the telemetry layer.
    """
    from repro.core import WrpkruPolicy
    from repro.harness import run_workload

    saved = {
        name: os.environ.get(name) for name in ("REPRO_CACHE",
                                                "REPRO_METRICS")
    }
    os.environ["REPRO_CACHE"] = "0"
    os.environ["REPRO_METRICS"] = "0"
    try:
        start = time.perf_counter()
        stats = run_workload(
            "520.omnetpp_r (SS)", WrpkruPolicy.SPECMPK,
            instructions=2_000, warmup=500,
        )
        elapsed = time.perf_counter() - start
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    class _Probe:
        value = 0
    probe = _Probe()
    loops = 200_000
    per_op = timeit.timeit(
        "probe.value = probe.value + 1", globals={"probe": probe},
        number=loops,
    ) / loops

    ops = _METRIC_OPS_PER_INSTRUCTION * stats.instructions_fetched
    overhead = ops * per_op / elapsed
    _write_result(
        results_dir / "metrics_overhead.txt",
        f"metrics-off overhead bound: {overhead:.2%} of wall clock\n"
        f"  run: {stats.cycles} cycles, "
        f"{stats.instructions_fetched} fetched, {elapsed:.3f}s\n"
        f"  metric ops (over-count): {ops}\n"
        f"  cost per attribute RMW: {per_op * 1e9:.1f} ns\n"
    )
    assert overhead < 0.02, (
        f"always-on metric bookkeeping costs {overhead:.2%} of simulator "
        f"wall-clock (budget: 2%)"
    )
    yield


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one rendered experiment output to the results directory."""

    def _save(name: str, text: str) -> None:
        _write_result(results_dir / f"{name}.txt", text + "\n")
        print(f"\n{text}\n")

    return _save

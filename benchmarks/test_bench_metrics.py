"""Telemetry-layer benchmarks: the metrics JSONL artifact and the
cost/purity budget of per-run snapshot collection.

Writes ``results/metrics.jsonl`` — one :class:`MetricsSnapshot` per
kernel profile, the CI benchmark artifact — and asserts the two
properties the telemetry layer promises:

* collection is cheap: one ``collect_run_metrics`` call costs <2% of
  the simulation it summarises;
* collection is pure: ``REPRO_METRICS`` on vs off cannot change a
  single ``SimStats`` value.
"""

import time

from repro.core.config import WrpkruPolicy
from repro.harness.api import RunRequest, execute
from repro.obs import read_jsonl, write_jsonl

from test_bench_kernel import INSTRUCTIONS, PROFILES, WARMUP, _simulate


def test_metrics_jsonl_artifact(results_dir):
    """One snapshot per kernel profile, written as the CI artifact."""
    snapshots = []
    for label in PROFILES:
        result = execute(RunRequest(
            workload=label,
            policy=WrpkruPolicy.SPECMPK,
            instructions=INSTRUCTIONS,
            warmup=WARMUP,
            metrics=True,
        ))
        assert result.metrics is not None
        assert (result.metrics.get("core.instructions_retired")
                == result.stats.instructions_retired)
        snapshots.append(result.metrics)
    path = results_dir / "metrics.jsonl"
    assert write_jsonl(path, snapshots) == len(PROFILES)
    labels = [snap.meta["label"] for snap in read_jsonl(path)]
    assert labels == PROFILES


def test_snapshot_collection_cost_is_bounded():
    """collect_run_metrics reads finished counters once per run; its
    wall clock must be a rounding error next to the run itself."""
    from repro.core.config import CoreConfig
    from repro.core.pipeline import Simulator
    from repro.obs.collect import collect_run_metrics
    from repro.workloads.generator import build_workload
    from repro.workloads.instrument import InstrumentMode
    from repro.workloads.profiles import profile_by_label

    label = PROFILES[0]
    workload = build_workload(
        profile_by_label(label), InstrumentMode.PROTECTED
    )
    sim = Simulator(
        workload.program,
        CoreConfig(wrpkru_policy=WrpkruPolicy.SPECMPK),
        initial_pkru=workload.initial_pkru,
    )
    sim.prewarm_tlb()
    start = time.perf_counter()
    sim.run(
        max_cycles=200 * (INSTRUCTIONS + WARMUP),
        max_instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
    )
    run_seconds = time.perf_counter() - start
    start = time.perf_counter()
    snapshot = collect_run_metrics(sim)
    collect_seconds = time.perf_counter() - start
    assert snapshot.counters
    assert collect_seconds < 0.02 * run_seconds, (
        f"collect_run_metrics took {collect_seconds * 1e3:.2f} ms "
        f"({collect_seconds / run_seconds:.1%} of a "
        f"{run_seconds * 1e3:.0f} ms run; budget 2%)"
    )


def test_metrics_flag_cannot_change_simstats(monkeypatch):
    """Collection is observation only: SimStats are bit-identical with
    REPRO_METRICS on vs off at the bench budgets."""
    label = PROFILES[0]
    monkeypatch.setenv("REPRO_METRICS", "1")
    on, _ = _simulate(label)
    monkeypatch.setenv("REPRO_METRICS", "0")
    off, _ = _simulate(label)
    assert vars(on) == vars(off)

"""SSIII-A motivation: MPK vs mprotect-based in-process isolation.

Not a numbered paper figure, but the motivating claim of SSIII: MPK's
user-space permission switch is far cheaper than the mprotect syscall +
TLB-shootdown path, especially under frequent domain switching.
"""

from repro.harness import motivation_mprotect_vs_mpk, render_table


def test_motivation_mprotect_vs_mpk(benchmark, save_result):
    rows = benchmark.pedantic(
        motivation_mprotect_vs_mpk, rounds=1, iterations=1
    )
    save_result(
        "motivation_mprotect",
        render_table(
            [
                {
                    "workload": row["workload"],
                    "switches": row["switches"],
                    "MPK cycles": row["mpk_cycles"],
                    "mprotect cycles": row["mprotect_cycles"],
                    "mprotect slowdown": f"{row['mprotect_slowdown']:.2f}x",
                }
                for row in rows
            ],
            title="SSIII motivation: mprotect-based isolation vs MPK "
                  "(modelled syscall + shootdown costs)",
        ),
    )
    by_label = {row["workload"]: row for row in rows}
    # Frequent switching makes mprotect catastrophically slower.
    assert by_label["520.omnetpp_r (SS)"]["mprotect_slowdown"] > 3.0
    # Rare switching keeps the variants much closer.
    assert by_label["557.xz_r (SS)"]["mprotect_slowdown"] < 2.5
    assert (
        by_label["557.xz_r (SS)"]["mprotect_slowdown"]
        < by_label["520.omnetpp_r (SS)"]["mprotect_slowdown"] / 3
    )
    # Slowdown grows with switch count.
    dense = by_label["520.omnetpp_r (SS)"]
    sparse = by_label["557.xz_r (SS)"]
    assert dense["switches"] > sparse["switches"]

"""Fig. 11 — sensitivity of SpecMPK to the ROB_pkru size.

Paper: 2/4/8 entries correspond to Active List ratios 1/96, 1/48 and
1/24.  Workloads with high WRPKRU density lose performance at small
ROB_pkru sizes; omnetpp needs the 1/24 ratio (8 entries) to match
NonSecure SpecMPK, while most others already match at 1/48.
"""

from repro.harness import fig11_rob_pkru_sensitivity, render_table


def test_fig11_rob_pkru_sensitivity(benchmark, save_result):
    rows = benchmark.pedantic(
        fig11_rob_pkru_sensitivity, rounds=1, iterations=1
    )
    save_result(
        "fig11_robpkru_sensitivity",
        render_table(
            [
                {
                    key: (f"{value:.3f}" if isinstance(value, float) else value)
                    for key, value in row.items()
                }
                for row in rows
            ],
            title="Fig. 11: normalized IPC vs ROB_pkru size "
                  "(2/4/8 entries = AL ratios 1/96, 1/48, 1/24)",
        ),
    )

    by_label = {row["workload"]: row for row in rows}

    def series(label):
        row = by_label[label]
        return (
            row["specmpk_2 (1/176)"],
            row["specmpk_4 (1/88)"],
            row["specmpk_8 (1/44)"],
            row["nonsecure"],
        )

    for label, row in by_label.items():
        two, four, eight, nonsecure = series(label)
        # Monotone non-decreasing in ROB_pkru size (small tolerance).
        assert two <= four * 1.03, label
        assert four <= eight * 1.03, label
        # The full 8-entry configuration reaches the NonSecure bound.
        assert eight > nonsecure * 0.90, label

    # The WRPKRU-dense omnetpp suffers most from a 2-entry ROB_pkru.
    omnetpp = by_label["520.omnetpp_r (SS)"]
    loss_omnetpp = (
        omnetpp["specmpk_8 (1/44)"] - omnetpp["specmpk_2 (1/176)"]
    )
    povray = by_label["453.povray (CPI)"]
    loss_povray = povray["specmpk_8 (1/44)"] - povray["specmpk_2 (1/176)"]
    assert loss_omnetpp > loss_povray

"""SSVIII — hardware overhead: ~93 B of state, 0.19% of the L1D."""

import pytest

from repro.harness import render_table, section8_hardware_overhead


def test_hardware_overhead(benchmark, save_result):
    data = benchmark.pedantic(
        section8_hardware_overhead, rounds=1, iterations=1
    )
    rows = [
        {"component": name, "bits": bits}
        for name, bits in data["breakdown_bits"].items()
    ]
    rows.append({"component": "TOTAL", "bits": data["total_bits"]})
    save_result(
        "section8_hw_overhead",
        render_table(rows, title="SSVIII: SpecMPK sequential state")
        + f"\ntotal: {data['total_bytes']:.1f} B "
        f"({data['l1d_fraction']:.2%} of L1D); "
        f"{data['area_um2']:.0f} um^2, {data['logic_cells']} cells, "
        f"+{data['dynamic_power_pct']:.2f}% dyn / "
        f"+{data['leakage_power_pct']:.2f}% leak",
    )
    assert data["total_bytes"] == pytest.approx(93, abs=2)
    assert data["l1d_fraction"] == pytest.approx(0.0019, abs=0.0002)
    assert data["area_um2"] == pytest.approx(5887.91, rel=0.01)
    assert data["logic_cells"] == 3103

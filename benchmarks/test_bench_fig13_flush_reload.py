"""Fig. 13 — Flush+Reload access latencies during the reload phase.

Paper: under NonSecure SpecMPK the reload shows a cache hit at index
101 (the secret) in addition to the training index 72; under SpecMPK
the hit at the secret index disappears.
"""

from repro.harness import fig13_flush_reload, render_latency_series


def test_fig13_flush_reload(benchmark, save_result):
    data = benchmark.pedantic(fig13_flush_reload, rounds=1, iterations=1)
    save_result(
        "fig13_flush_reload",
        "\n\n".join(
            [
                render_latency_series(
                    data["nonsecure_latencies"],
                    title="Fig. 13 (NonSecure SpecMPK): reload latencies",
                ),
                render_latency_series(
                    data["specmpk_latencies"],
                    title="Fig. 13 (SpecMPK): reload latencies",
                ),
            ]
        ),
    )

    secret = data["secret_value"]
    nonsecure = data["nonsecure_latencies"]
    specmpk = data["specmpk_latencies"]

    # NonSecure: the secret's probe line is a cache hit.
    assert data["nonsecure_leaked"]
    assert nonsecure[secret] < 10

    # SpecMPK: the same index stays at memory latency — no side channel.
    assert not data["specmpk_leaked"]
    assert specmpk[secret] >= 100

    # All other indices are cold in both series (clean measurement).
    for index, latency in enumerate(nonsecure):
        if index != secret:
            assert latency >= 100, f"unexpected hot index {index}"
    for index, latency in enumerate(specmpk):
        assert latency >= 100, f"unexpected hot index {index}"

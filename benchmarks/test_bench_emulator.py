"""Functional-emulation throughput gate (the block-cache tentpole).

Measures functional-pass throughput in MIPS (million architecturally
executed instructions per wall-clock second) on the four calibrated
profiles and checks it against the checked-in baseline in
``results/BENCH_emulator.json``:

* the measured numbers are written to ``results/emulator_mips.json``
  (the CI artifact);
* a drop of more than ``regression_tolerance`` (20%) below the
  checked-in *optimized* MIPS fails the run — after normalising for
  host speed via ``REPRO_MIPS_SCALE`` (falling back to
  ``REPRO_KIPS_SCALE`` so CI's existing knob covers both gates; the
  scale multiplies the checked-in reference, not the measurement);
* the speedup itself is asserted *live* and host-independently: the
  same programs run on the single-step interpreter (``blocks=False``,
  the pre-change engine) and block-cached execution must be at least
  ``speedup_floor`` (3x) faster in geomean;
* the acceleration must be pure: the final architectural state of a
  block-cached pass is asserted bit-identical to the stepped pass.
"""

import json
import math
import pathlib
import time

from repro.isa.emulator import make_emulator
from repro.state import WarmTouch
from repro.workloads.generator import build_workload
from repro.workloads.instrument import InstrumentMode
from repro.workloads.profiles import profile_by_label

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_emulator.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

PROFILES = list(BASELINE["optimized_mips"])
INSTRUCTIONS = BASELINE["methodology"]["instructions"]
REPEATS = BASELINE["methodology"]["repeats"]
TOLERANCE = BASELINE["regression_tolerance"]
SPEEDUP_FLOOR = BASELINE["speedup_floor"]

_workloads = {}


def _workload(label):
    if label not in _workloads:
        _workloads[label] = build_workload(
            profile_by_label(label), InstrumentMode.PROTECTED
        )
    return _workloads[label]


def _run_once(label, blocks, warm_on):
    """One timed functional pass; returns (emulator, elapsed_seconds)."""
    emulator = make_emulator(_workload(label), blocks=blocks)
    warm = WarmTouch() if warm_on else None
    start = time.perf_counter()
    executed = emulator.run_fast(INSTRUCTIONS, warm=warm)
    elapsed = time.perf_counter() - start
    assert executed == INSTRUCTIONS, f"{label} halted early at {executed}"
    return emulator, elapsed


def _mips(label, blocks=True, warm_on=False):
    best = min(_run_once(label, blocks, warm_on)[1] for _ in range(REPEATS))
    return INSTRUCTIONS / best / 1e6


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _host_scale():
    from repro.perf.envflag import env_float

    mips = env_float("REPRO_MIPS_SCALE")
    if mips is not None:
        return mips
    return env_float("REPRO_KIPS_SCALE", 1.0)


def test_emulator_mips_regression_gate(results_dir):
    scale = _host_scale()
    measured = {label: _mips(label) for label in PROFILES}
    measured_warm = {label: _mips(label, warm_on=True) for label in PROFILES}
    report = {
        "unit": "MIPS",
        "measured": {k: round(v, 2) for k, v in measured.items()},
        "measured_warm": {k: round(v, 2) for k, v in measured_warm.items()},
        "reference_optimized": BASELINE["optimized_mips"],
        "reference_baseline": BASELINE["baseline_mips"],
        "host_scale": scale,
        "geomean_vs_pre_optimization": round(
            _geomean([
                measured[label] / BASELINE["baseline_mips"][label]
                for label in PROFILES
            ]), 2
        ),
    }
    (results_dir / "emulator_mips.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    failures = []
    for label in PROFILES:
        floor = BASELINE["optimized_mips"][label] * scale * (1 - TOLERANCE)
        if measured[label] < floor:
            failures.append(
                f"{label}: {measured[label]:.2f} MIPS < floor {floor:.2f}"
            )
        warm_floor = (
            BASELINE["warm_optimized_mips"][label] * scale * (1 - TOLERANCE)
        )
        if measured_warm[label] < warm_floor:
            failures.append(
                f"{label} (warm): {measured_warm[label]:.2f} MIPS < "
                f"floor {warm_floor:.2f}"
            )
    assert not failures, (
        "functional-emulation throughput regressed >"
        f"{TOLERANCE:.0%} vs results/BENCH_emulator.json: "
        + "; ".join(failures)
    )


def test_block_cache_geomean_speedup():
    """Host-independent acceptance bound: block-cached execution is at
    least ``speedup_floor`` (3x) faster than the single-step
    interpreter in geomean over the bench profiles."""
    ratios = []
    for label in PROFILES:
        stepped = _mips(label, blocks=False)
        blocked = _mips(label, blocks=True)
        ratios.append(blocked / stepped)
    geomean = _geomean(ratios)
    assert geomean >= SPEEDUP_FLOOR, (
        f"block-cache speedup {geomean:.2f}x < required "
        f"{SPEEDUP_FLOOR:.1f}x (per-profile: "
        + ", ".join(f"{r:.2f}x" for r in ratios) + ")"
    )


def test_block_pass_is_architecturally_identical():
    """The acceleration must be pure: same final state either way."""
    for label in PROFILES:
        blocked, _ = _run_once(label, blocks=True, warm_on=False)
        stepped, _ = _run_once(label, blocks=False, warm_on=False)
        assert blocked.state.regs == stepped.state.regs, label
        assert blocked.state.pc == stepped.state.pc, label
        assert blocked.state.pkru == stepped.state.pkru, label
        assert (blocked.state.memory.snapshot()
                == stepped.state.memory.snapshot()), label
        assert (blocked.instructions_executed
                == stepped.instructions_executed), label
        assert blocked.wrpkru_executed == stepped.wrpkru_executed, label

"""Fig. 9 — normalized IPC of SpecMPK and NonSecure SpecMPK.

Paper: SpecMPK achieves a 12.21% average speedup over the serialized
baseline (max 48.42%), and its curve tracks NonSecure SpecMPK closely
because the protection stalls are insignificant.
"""

from repro.harness import fig9_normalized_ipc, render_bars, render_table


def test_fig9_normalized_ipc(benchmark, save_result):
    rows = benchmark.pedantic(fig9_normalized_ipc, rounds=1, iterations=1)
    table = render_table(
        [
            {
                "workload": row["workload"],
                "NonSecure SpecMPK": f"{row['nonsecure_specmpk']:.3f}",
                "SpecMPK": f"{row['specmpk']:.3f}",
            }
            for row in rows
        ],
        title="Fig. 9: IPC normalized to the serialized-WRPKRU baseline",
    )
    bars = render_bars(
        [(row["workload"], row["specmpk"] - 1.0) for row in rows[:-1]],
        title="SpecMPK speedup per workload",
    )
    save_result("fig9_normalized_ipc", table + "\n\n" + bars)

    by_label = {row["workload"]: row for row in rows}
    geo = by_label.pop("geomean")

    # Headline: average speedup in the paper's range (12.21% reported).
    assert 0.05 < geo["specmpk"] - 1.0 < 0.22
    # Max speedup near the paper's 48.42%, on omnetpp (SS).
    peak_label = max(by_label, key=lambda l: by_label[l]["specmpk"])
    assert peak_label == "520.omnetpp_r (SS)"
    assert 1.30 < by_label[peak_label]["specmpk"] < 1.70

    # SpecMPK tracks NonSecure closely on every workload (<= ~8% gap).
    for label, row in by_label.items():
        assert row["specmpk"] > row["nonsecure_specmpk"] * 0.92, label
        # And never beats the unprotected bound by more than noise.
        assert row["specmpk"] < row["nonsecure_specmpk"] * 1.05, label

    # Speedup follows WRPKRU density: dense workloads gain, sparse do not.
    assert by_label["505.mcf_r (SS)"]["specmpk"] < 1.05
    assert by_label["520.omnetpp_r (SS)"]["specmpk"] > 1.3

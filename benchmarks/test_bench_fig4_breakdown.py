"""Fig. 4 — overhead breakdown: compiler transformation vs serialization.

Paper methodology: replace WRPKRU with NOP to isolate the compiler
transformation; the WRPKRU serialization adds substantially more
overhead than the transformation itself on the protected workloads.
"""

from repro.harness import fig4_overhead_breakdown, render_table

#: Protection-heavy workloads where the breakdown is meaningful.
LABELS = [
    "500.perlbench_r (SS)",
    "502.gcc_r (SS)",
    "520.omnetpp_r (SS)",
    "531.deepsjeng_r (SS)",
    "541.leela_r (SS)",
    "453.povray (CPI)",
    "471.omnetpp (CPI)",
    "403.gcc (CPI)",
]


def test_fig4_overhead_breakdown(benchmark, save_result):
    rows = benchmark.pedantic(
        fig4_overhead_breakdown, args=(LABELS,), rounds=1, iterations=1
    )
    save_result(
        "fig4_breakdown",
        render_table(
            [
                {
                    "workload": row["workload"],
                    "compiler": f"{row['compiler_overhead']:+.1%}",
                    "serialization": f"{row['serialization_overhead']:+.1%}",
                    "total": f"{row['total_overhead']:+.1%}",
                }
                for row in rows
            ],
            title="Fig. 4: protection overhead breakdown vs non-secure",
        ),
    )

    average = rows[-1]
    assert average["workload"] == "average"
    # The paper's claim: serialization dominates the compiler
    # transformation overhead on these workloads.
    assert (
        average["serialization_overhead"]
        > 1.5 * average["compiler_overhead"]
    )
    assert average["serialization_overhead"] > 0.08
    assert 0.0 <= average["compiler_overhead"] < 0.15
    # Totals decompose multiplicatively.
    for row in rows[:-1]:
        reconstructed = (
            (1 + row["compiler_overhead"])
            * (1 + row["serialization_overhead"])
            - 1
        )
        assert abs(reconstructed - row["total_overhead"]) < 1e-9

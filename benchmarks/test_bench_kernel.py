"""Cycle-kernel throughput gate (the ``repro.perf`` tentpole).

Measures simulator throughput in KIPS (thousand simulated instructions
per wall-clock second) on four calibrated profiles and checks it
against the checked-in baseline in ``results/BENCH_kernel.json``:

* the measured numbers are written to ``results/kernel_kips.json`` (the
  CI artifact);
* a drop of more than ``regression_tolerance`` (20%) below the
  checked-in *optimized* KIPS fails the run — after normalising for
  host speed via ``REPRO_KIPS_SCALE`` (a slower CI runner exports e.g.
  ``REPRO_KIPS_SCALE=0.5``; the scale multiplies the checked-in
  reference, not the measurement);
* the optimizations must be *pure*: SimStats are asserted bit-identical
  with idle fast-skip on vs off, across all four array-memory x
  macro-step combinations (including the SpecMPK occupancy histogram
  and the spec/wrongpath fill-provenance counters), and a run-cache
  hit must return the exact stats of the run that populated it.
"""

import json
import math
import pathlib
import time

from repro.core.config import CoreConfig, WrpkruPolicy
from repro.core.pipeline import Simulator
from repro.harness.api import RunRequest, execute
from repro.workloads.generator import build_workload
from repro.workloads.instrument import InstrumentMode
from repro.workloads.profiles import profile_by_label

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_kernel.json"
BASELINE = json.loads(BASELINE_PATH.read_text())

PROFILES = list(BASELINE["optimized_kips"])
INSTRUCTIONS = BASELINE["methodology"]["instructions"]
WARMUP = BASELINE["methodology"]["warmup"]
REPEATS = BASELINE["methodology"]["repeats"]
TOLERANCE = BASELINE["regression_tolerance"]


def _simulate(label: str, fast_skip: bool = True, macro_step: bool = True,
              backend: str = None):
    """One timed kernel run; returns (stats, elapsed_seconds, sim).

    *backend* pins the memory-system backend ("array"/"dict",
    ``None`` = the ``REPRO_ARRAY_MEM`` default); *macro_step* toggles
    the steady-state macro-stepping fast path.
    """
    workload = build_workload(
        profile_by_label(label), InstrumentMode.PROTECTED
    )
    config = CoreConfig(
        wrpkru_policy=WrpkruPolicy.SPECMPK, idle_fast_skip=fast_skip,
        macro_step=macro_step,
    )
    sim = Simulator(
        workload.program, config, initial_pkru=workload.initial_pkru
    )
    if backend is not None:
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.memory.backend import make_tlb

        cfg = sim.config
        sim.hierarchy = MemoryHierarchy(
            l1d=cfg.l1d, l1i=cfg.l1i if cfg.model_icache else None,
            l2=cfg.l2, l3=cfg.l3, dram_latency=cfg.dram_latency,
            prefetch_next_line=cfg.prefetch_next_line, backend=backend,
        )
        sim.tlb = make_tlb(
            sim.memory.page_table, entries=cfg.tlb_entries,
            walk_latency=cfg.tlb_walk_latency, backend=backend,
        )
    sim.prewarm_tlb()
    start = time.perf_counter()
    result = sim.run(
        max_cycles=200 * (INSTRUCTIONS + WARMUP),
        max_instructions=INSTRUCTIONS,
        warmup_instructions=WARMUP,
    )
    elapsed = time.perf_counter() - start
    assert result.fault is None
    return result.stats, elapsed, sim


def _kips(label: str) -> float:
    best = min(_simulate(label)[1] for _ in range(REPEATS))
    return (INSTRUCTIONS + WARMUP) / best / 1_000.0


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_kernel_kips_regression_gate(results_dir):
    from repro.perf.envflag import env_float

    scale = env_float("REPRO_KIPS_SCALE", 1.0)
    measured = {label: _kips(label) for label in PROFILES}
    report = {
        "unit": "KIPS",
        "measured": {k: round(v, 2) for k, v in measured.items()},
        "reference_optimized": BASELINE["optimized_kips"],
        "reference_baseline": BASELINE["baseline_kips"],
        "host_scale": scale,
        "geomean_vs_pre_optimization": round(
            _geomean([
                measured[label] / BASELINE["baseline_kips"][label]
                for label in PROFILES
            ]), 2
        ),
    }
    (results_dir / "kernel_kips.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    failures = []
    for label in PROFILES:
        floor = BASELINE["optimized_kips"][label] * scale * (1 - TOLERANCE)
        if measured[label] < floor:
            failures.append(
                f"{label}: {measured[label]:.1f} KIPS < floor {floor:.1f}"
            )
    assert not failures, (
        "kernel throughput regressed >"
        f"{TOLERANCE:.0%} vs results/BENCH_kernel.json: "
        + "; ".join(failures)
    )


def test_fast_skip_is_pure_at_bench_budgets():
    """Identical SimStats with the idle-cycle fast-skip on vs off, at
    the same budgets the KIPS gate uses."""
    label = PROFILES[0]
    on = _simulate(label, fast_skip=True)[0]
    off = _simulate(label, fast_skip=False)[0]
    assert vars(on) == vars(off)


def _observe_full(stats, sim):
    """Everything the four-combo purity gate compares: every SimStats
    field (fill provenance included), the SpecMPK occupancy histogram,
    and the memory-system counters both backends must agree on."""
    return {
        "stats": vars(stats),
        "spec_fills": stats.spec_fills,
        "wrongpath_fills": stats.wrongpath_fills,
        "pkru_occupancy": sim.specmpk_occupancy_histogram(),
        "l1d": sim.hierarchy.l1d.stats.as_dict(),
        "l2": sim.hierarchy.l2.stats.as_dict(),
        "l3": sim.hierarchy.l3.stats.as_dict(),
        "tlb": sim.tlb.stats.as_dict(),
    }


def test_four_combo_purity_at_bench_budgets():
    """{array, dict} x {macro-step on, off} at the KIPS-gate budgets:
    all four engine combinations produce bit-identical observables."""
    label = PROFILES[0]
    reference = None
    for backend in ("array", "dict"):
        for macro_step in (True, False):
            stats, _, sim = _simulate(
                label, macro_step=macro_step, backend=backend
            )
            observed = _observe_full(stats, sim)
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (backend, macro_step)


def test_cache_hit_matches_simulated_run(tmp_path, monkeypatch):
    """A run-cache hit must reproduce the populating run's stats."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    request = RunRequest(
        workload=PROFILES[0],
        policy=WrpkruPolicy.SPECMPK,
        instructions=INSTRUCTIONS,
        warmup=WARMUP,
    )
    cold = execute(request)   # simulates, populates the cache
    warm = execute(request)   # must be served from the cache
    from repro.perf.runcache import default_cache
    assert default_cache().hits >= 1
    assert vars(warm.stats) == vars(cold.stats)
    assert warm.metadata == cold.metadata

"""Fast-forward benchmark: checkpointed vs full-prefix ``weighted_ipc``.

The checkpointed SimPoint path (functional fast-forward + warm-touch
replay + short detailed warmup) must reproduce the full-prefix timing
path's weighted IPC within 2% on *every* workload profile while being
at least 3x faster overall — otherwise the fast path is not a drop-in
replacement for the paper's methodology.  Writes the per-profile
comparison to ``benchmarks/results/fastforward_speedup.txt``.
"""

import time

from repro.harness import render_table
from repro.simpoint import collect_bbv, select_simpoints, weighted_ipc
from repro.workloads import ALL_PROFILES, build_workload

INTERVAL_LENGTH = 2_000
PROFILE_INSTRUCTIONS = 40_000
TOP_N = 3


def _compare_profile(profile):
    workload = build_workload(profile)
    bbv = collect_bbv(
        workload.program,
        interval_length=INTERVAL_LENGTH,
        max_instructions=PROFILE_INSTRUCTIONS,
        pkru=workload.initial_pkru,
    )
    selection = select_simpoints(bbv, top_n=TOP_N)

    start = time.perf_counter()
    full = weighted_ipc(
        workload.program, selection,
        initial_pkru=workload.initial_pkru, fastforward=False,
    )
    full_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = weighted_ipc(
        workload.program, selection,
        initial_pkru=workload.initial_pkru,
    )
    fast_seconds = time.perf_counter() - start

    return {
        "workload": profile.label,
        "full_ipc": full,
        "fast_ipc": fast,
        "error": abs(fast - full) / full,
        "full_seconds": full_seconds,
        "fast_seconds": fast_seconds,
    }


def test_fastforward_accuracy_and_speedup(benchmark, save_result):
    rows = benchmark.pedantic(
        lambda: [_compare_profile(profile) for profile in ALL_PROFILES],
        rounds=1, iterations=1,
    )

    full_total = sum(row["full_seconds"] for row in rows)
    fast_total = sum(row["fast_seconds"] for row in rows)
    speedup = full_total / fast_total
    save_result(
        "fastforward_speedup",
        render_table(
            [
                {
                    "workload": row["workload"],
                    "full IPC": f"{row['full_ipc']:.4f}",
                    "ckpt IPC": f"{row['fast_ipc']:.4f}",
                    "error": f"{row['error']:.2%}",
                    "speedup": (
                        f"{row['full_seconds'] / row['fast_seconds']:.1f}x"
                    ),
                }
                for row in rows
            ],
            title=(
                "Checkpointed vs full-prefix weighted IPC "
                f"(total {full_total:.1f}s -> {fast_total:.1f}s, "
                f"{speedup:.1f}x)"
            ),
        ),
    )

    # Acceptance: within 2% IPC on every profile, >= 3x faster overall.
    for row in rows:
        assert row["error"] <= 0.02, (
            f"{row['workload']}: checkpointed IPC {row['fast_ipc']:.4f} "
            f"vs full-prefix {row['full_ipc']:.4f} "
            f"({row['error']:.2%} > 2%)"
        )
    assert speedup >= 3.0, (
        f"checkpointed path only {speedup:.2f}x faster "
        f"({full_total:.1f}s vs {fast_total:.1f}s)"
    )

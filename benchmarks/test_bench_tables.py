"""Tables I, II, III — taxonomy, new source operands, configuration."""

from repro.harness import (
    render_table,
    table1_isolation_properties,
    table2_source_operands,
    table3_configuration,
)


def test_table1_isolation_properties(benchmark, save_result):
    data = benchmark.pedantic(
        table1_isolation_properties, rounds=1, iterations=1
    )
    save_result(
        "table1_isolation",
        render_table(data["rows"], title="Table I: isolation techniques")
        + "\nprobe verdicts: "
        + ", ".join(f"{k}={v}" for k, v in data["probes"].items()),
    )
    rows = {row["Isolation Method"]: row for row in data["rows"]}
    assert rows["MPK"]["Secure"] == "yes"
    assert rows["MPK"]["Fast Interleaved Access"] == "yes"
    assert rows["MPK"]["Least-Privilege Capability"] == "yes"
    assert all(data["probes"].values())


def test_table2_source_operands(benchmark, save_result):
    rows = benchmark.pedantic(table2_source_operands, rounds=1, iterations=1)
    save_result(
        "table2_operands",
        render_table(rows, title="Table II: additional source operands"),
    )
    by_type = {row["Instruction Type"]: row for row in rows}
    assert "AccessDisableCounter" in by_type["Load"]["New Source Operands"]
    assert "WriteDisableCounter" in by_type["Store"]["New Source Operands"]
    assert "WriteDisableCounter" not in by_type["Load"]["New Source Operands"]


def test_table3_configuration(benchmark, save_result):
    rows = benchmark.pedantic(table3_configuration, rounds=1, iterations=1)
    save_result(
        "table3_configuration",
        render_table(rows, title="Table III: simulated configuration"),
    )
    values = {row["Parameter"]: row["Value"] for row in rows}
    assert values["AL/LQ/SQ/IQ/PRF Size"] == "352/128/72/160/280"
    assert values["ROB_pkru size"] == "8"
    assert values["BTB"] == "4096 entries"
    assert "48kB, 12-way, 5-cycle" in values["L1 Data Cache"]
    assert "2MB, 16-way, 40-cycle" in values["L3 Cache"]

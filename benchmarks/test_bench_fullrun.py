"""Time-sharded full-run gate (``repro bench fullrun`` as a test).

Times one monolithic detailed run against the same run split into K=4
checkpoint shards over the worker pool and gates the result against
``results/BENCH_fullrun.json``:

* the report is written to ``results/fullrun_speedup.json`` (the CI
  artifact);
* the **accuracy** bounds are unconditional: the folded architectural
  counters must equal the requested budget exactly, and the sharded
  IPC must stay within the checked-in error bound of the monolithic
  run;
* the **speedup floor** (3x at 4 shards, minus the 20% tolerance,
  scaled by ``REPRO_FULLRUN_SCALE``) is enforced only when the host
  actually grants 4 concurrent workers — on a 1-core container the
  honest measurement is the sharding *overhead* and gating it against
  a parallel-host floor would be theater.
"""

import json
import pathlib

from repro.perf.fullrunbench import (
    check_against_reference,
    effective_workers,
    run_fullrun_bench,
)

BASELINE_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_fullrun.json"
)
BASELINE = json.loads(BASELINE_PATH.read_text())
METHOD = BASELINE["methodology"]


def test_fullrun_sharding_gate(results_dir):
    from repro.perf.envflag import env_float

    scale = env_float("REPRO_FULLRUN_SCALE", 1.0)
    report = run_fullrun_bench(
        labels=[METHOD["label"]],
        instructions=METHOD["instructions"],
        warmup=METHOD["warmup"],
        shards=METHOD["shards"],
        shard_warmup=METHOD["shard_warmup"],
        repeats=METHOD["repeats"],
    )
    report["reference"] = {
        "speedup_floor": BASELINE["speedup_floor"],
        "min_effective_workers": BASELINE["min_effective_workers"],
        "max_ipc_error_percent": BASELINE["max_ipc_error_percent"],
        "host_scale": scale,
        "speedup_gated":
            effective_workers(METHOD["shards"])
            >= BASELINE["min_effective_workers"],
    }
    (results_dir / "fullrun_speedup.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    failures = check_against_reference(report, BASELINE, scale=scale)
    assert not failures, (
        "time-sharded full run regressed vs results/BENCH_fullrun.json: "
        + "; ".join(failures)
    )

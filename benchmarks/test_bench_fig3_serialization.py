"""Fig. 3 — speedup from speculative WRPKRU and rename-stall fraction.

Paper: up to 48.43% (12.58% average) speedup when WRPKRU serialization
is relaxed, with serialization showing up as rename-stage stalls.
"""

from repro.harness import fig3_serialization_study, render_table


def test_fig3_serialization_study(benchmark, save_result):
    rows = benchmark.pedantic(
        fig3_serialization_study, rounds=1, iterations=1
    )
    save_result(
        "fig3_serialization",
        render_table(
            [
                {
                    "workload": row["workload"],
                    "speedup": f"{row['speedup']:+.1%}",
                    "rename stall cycles": f"{row['rename_stall_fraction']:.1%}",
                }
                for row in rows
            ],
            title="Fig. 3: speculative-WRPKRU speedup and rename stalls",
        ),
    )

    by_label = {row["workload"]: row for row in rows}
    average = by_label.pop("average")

    # Shape: sizeable average benefit, sub-linear tail, one dominant
    # workload near the paper's ~48% ceiling.
    assert 0.05 < average["speedup"] < 0.25
    peak = max(row["speedup"] for row in by_label.values())
    assert 0.30 < peak < 0.70
    # The peak belongs to the call-heavy omnetpp (SS) workload.
    peak_label = max(by_label, key=lambda l: by_label[l]["speedup"])
    assert peak_label == "520.omnetpp_r (SS)"
    # Low-density workloads are essentially unaffected.
    assert by_label["505.mcf_r (SS)"]["speedup"] < 0.03
    assert by_label["401.bzip2 (CPI)"]["speedup"] < 0.03
    # Speedup correlates with rename-stall pressure.
    assert (
        by_label["520.omnetpp_r (SS)"]["rename_stall_fraction"]
        > by_label["557.xz_r (SS)"]["rename_stall_fraction"]
    )

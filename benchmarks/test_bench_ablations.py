"""Ablations of the DESIGN.md key decisions.

Not paper figures: these quantify the cost of the conservative choices
SpecMPK makes (TLB-miss stalling, the counters' WAR hazard).
"""

from repro.core import CoreConfig, WrpkruPolicy
from repro.harness import ablation_tlb_deferral, render_table, run_workload


def test_ablation_tlb_miss_stall(benchmark, save_result):
    """Cost of conservatively stalling TLB-missing accesses (SSV-C5)."""
    rows = benchmark.pedantic(ablation_tlb_deferral, rounds=1, iterations=1)
    save_result(
        "ablation_tlb_stall",
        render_table(
            [
                {
                    "workload": row["workload"],
                    "strict IPC": f"{row['strict_ipc']:.3f}",
                    "relaxed IPC": f"{row['relaxed_ipc']:.3f}",
                    "tlb stalls": row["tlb_stalls"],
                    "relaxation gain": f"{row['cost']:+.1%}",
                }
                for row in rows
            ],
            title="Ablation: SpecMPK TLB-miss stall-to-head (SSV-C5)",
        ),
    )
    for row in rows:
        # With a warmed, realistically sized TLB the conservative stall
        # costs little — the paper's premise for keeping it.
        assert abs(row["cost"]) < 0.10, row["workload"]


def test_ablation_rob_pkru_window(benchmark, save_result):
    """The ROB_pkru window is what separates SpecMPK from full
    serialization: a 1-entry window degenerates toward the baseline."""

    def run():
        label = "520.omnetpp_r (SS)"
        serialized = run_workload(
            label, WrpkruPolicy.SERIALIZED, instructions=8000
        )
        tiny = run_workload(
            label, WrpkruPolicy.SPECMPK, instructions=8000,
            config=CoreConfig(
                wrpkru_policy=WrpkruPolicy.SPECMPK, rob_pkru_size=1
            ),
        )
        full = run_workload(
            label, WrpkruPolicy.SPECMPK, instructions=8000,
            config=CoreConfig(
                wrpkru_policy=WrpkruPolicy.SPECMPK, rob_pkru_size=8
            ),
        )
        return serialized.ipc, tiny.ipc, full.ipc

    serialized_ipc, tiny_ipc, full_ipc = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    save_result(
        "ablation_rob_pkru_window",
        render_table(
            [
                {"configuration": "serialized baseline",
                 "IPC": f"{serialized_ipc:.3f}"},
                {"configuration": "SpecMPK, 1-entry ROB_pkru",
                 "IPC": f"{tiny_ipc:.3f}"},
                {"configuration": "SpecMPK, 8-entry ROB_pkru",
                 "IPC": f"{full_ipc:.3f}"},
            ],
            title="Ablation: ROB_pkru window depth on 520.omnetpp_r (SS)",
        ),
    )
    # A 1-entry window still beats full drain (it overlaps one WRPKRU)
    # but sits clearly below the 8-entry configuration.
    assert tiny_ipc >= serialized_ipc * 0.98
    assert full_ipc > tiny_ipc * 1.05


def test_comparison_general_mitigations(benchmark, save_result):
    """SSIII-D: a general secure-speculation scheme (delay-on-miss)
    protects everything and pays everywhere; SpecMPK is targeted."""
    from repro.harness import comparison_general_mitigations

    rows = benchmark.pedantic(
        comparison_general_mitigations, rounds=1, iterations=1
    )
    save_result(
        "comparison_general_mitigations",
        render_table(
            [
                {
                    "workload": row["workload"],
                    "SpecMPK": f"{row['specmpk']:.3f}",
                    "delay-on-miss": f"{row['delay_on_miss']:.3f}",
                }
                for row in rows
            ],
            title="SSIII-D: normalized IPC vs serialized baseline — "
                  "targeted (SpecMPK) vs general (DoM) protection",
        ),
    )
    for row in rows:
        # SpecMPK always wins against the general-purpose mitigation.
        assert row["specmpk"] > row["delay_on_miss"], row["workload"]
    # And DoM is a real slowdown even relative to the serialized
    # baseline on memory-bound workloads.
    by_label = {row["workload"]: row for row in rows}
    assert by_label["505.mcf_r (SS)"]["delay_on_miss"] < 1.0


def test_study_rdpkru_avoidance(benchmark, save_result):
    """SSV-C6: RDPKRU read-modify-write vs compiler load-immediate."""
    from repro.harness import study_rdpkru_avoidance

    results = benchmark.pedantic(study_rdpkru_avoidance, rounds=1,
                                 iterations=1)
    save_result(
        "study_rdpkru",
        render_table(
            [
                {"idiom": "rdpkru read-modify-write",
                 "IPC": f"{results['rdpkru_idiom']:.3f}"},
                {"idiom": "load-immediate (compiler)",
                 "IPC": f"{results['li_idiom']:.3f}"},
            ],
            title="SSV-C6: permission-update idioms under SpecMPK",
        ) + f"\nload-immediate speedup: {results['li_speedup']:.2f}x",
    )
    # The serialized RDPKRU makes the pkey_set idiom measurably slower.
    assert results["li_speedup"] > 1.1


def test_ablation_memory_dependence_speculation(benchmark, save_result):
    """Substrate ablation: conservative load ordering vs memory-
    dependence speculation (the paper's machine speculates; the
    calibrated default here is conservative)."""
    from repro.harness import run_workload

    def run():
        rows = []
        for label in ("505.mcf_r (SS)", "541.leela_r (SS)",
                      "471.omnetpp (CPI)"):
            conservative = run_workload(
                label, WrpkruPolicy.SPECMPK, instructions=8000
            )
            speculative = run_workload(
                label, WrpkruPolicy.SPECMPK, instructions=8000,
                config=CoreConfig(
                    wrpkru_policy=WrpkruPolicy.SPECMPK,
                    memory_dependence_speculation=True,
                ),
            )
            rows.append(
                {
                    "workload": label,
                    "conservative_ipc": conservative.ipc,
                    "speculative_ipc": speculative.ipc,
                    "order_squashes": speculative.memory_order_squashes,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_memory_dependence",
        render_table(
            [
                {
                    "workload": row["workload"],
                    "conservative IPC": f"{row['conservative_ipc']:.3f}",
                    "speculative IPC": f"{row['speculative_ipc']:.3f}",
                    "order squashes": row["order_squashes"],
                }
                for row in rows
            ],
            title="Ablation: memory-dependence speculation",
        ),
    )
    for row in rows:
        # Speculation must never be a large regression, and ordering
        # violations must be rare on these workloads.
        assert row["speculative_ipc"] > row["conservative_ipc"] * 0.9


def test_study_minic_protection(benchmark, save_result):
    """End-to-end compiler study: MiniC builds x microarchitectures."""
    from repro.harness import study_minic_protection

    rows = benchmark.pedantic(study_minic_protection, rounds=1, iterations=1)
    save_result(
        "study_minic",
        render_table(rows, title="MiniC session-key program: cycles by "
                                 "build and WRPKRU microarchitecture"),
    )
    by_build = {row["build"]: row for row in rows}
    unprotected = by_build["unprotected"]
    full = by_build["secure+shadow-stack"]
    # Unprotected builds carry no WRPKRU and are policy-insensitive.
    assert unprotected["wrpkru_sites"] == 0
    spread = max(
        unprotected[p.value + "_cycles"] for p in WrpkruPolicy
    ) / min(unprotected[p.value + "_cycles"] for p in WrpkruPolicy)
    assert spread < 1.05
    # The fully protected build pays for serialization and recovers
    # most of it under SpecMPK.
    serialized = full["serialized_cycles"]
    specmpk = full["specmpk_cycles"]
    nonsecure = full["nonsecure_spec_cycles"]
    assert serialized > nonsecure * 1.1
    assert specmpk < serialized
    assert specmpk < nonsecure * 1.15

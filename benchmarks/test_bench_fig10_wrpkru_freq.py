"""Fig. 10 — WRPKRU frequency in the dynamic instruction stream.

Paper: performance enhancement aligns with WRPKRU density; omnetpp
dominates, while mcf/xz/exchange2/bzip2/hmmer have very few WRPKRUs.
"""

from repro.harness import fig10_wrpkru_frequency, render_bars


def test_fig10_wrpkru_frequency(benchmark, save_result):
    rows = benchmark.pedantic(fig10_wrpkru_frequency, rounds=1, iterations=1)
    save_result(
        "fig10_wrpkru_frequency",
        render_bars(
            [(row["workload"], row["wrpkru_per_kilo"]) for row in rows],
            title="Fig. 10: WRPKRU per kilo-instruction",
        ),
    )

    density = {row["workload"]: row["wrpkru_per_kilo"] for row in rows}

    # omnetpp (SS) tops the chart; its CPI twin leads the CPI group.
    assert density["520.omnetpp_r (SS)"] == max(density.values())
    cpi_group = {l: d for l, d in density.items() if "(CPI)" in l}
    assert max(cpi_group, key=cpi_group.get) == "471.omnetpp (CPI)"

    # The paper's "very few WRPKRU" group sits near zero.
    for label in (
        "505.mcf_r (SS)", "548.exchange2_r (SS)", "557.xz_r (SS)",
        "401.bzip2 (CPI)", "429.mcf (CPI)", "456.hmmer (CPI)",
    ):
        assert density[label] < 1.5, label

    # Mid-tier call-heavy workloads are clearly separated from both.
    for label in ("500.perlbench_r (SS)", "531.deepsjeng_r (SS)"):
        assert 3.0 < density[label] < density["520.omnetpp_r (SS)"], label
